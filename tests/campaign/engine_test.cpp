// Campaign engine: scheduling-independent reproducibility and the
// detection-rate ordering the paper's Table I implies.

#include <gtest/gtest.h>

#include <algorithm>

#include "campaign/engine.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte,
                    attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 3;
    spec.master_seed = 77;
    spec.query_budget = 2500;
    return spec;
}

const campaign::cell_report& find_cell(const campaign::campaign_report& report,
                                       scheme_kind scheme,
                                       attack::attack_kind attack) {
    const auto it = std::find_if(
        report.cells.begin(), report.cells.end(), [&](const auto& c) {
            return c.scheme == scheme && c.attack == attack;
        });
    EXPECT_NE(it, report.cells.end());
    return *it;
}

TEST(campaign_engine, seeds_depend_only_on_master_seed_and_index) {
    const auto a = campaign::seeds_for_trial(42, 7);
    const auto b = campaign::seeds_for_trial(42, 7);
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.attacker, b.attacker);
    // Streams are split: server != attacker, and neighbors don't collide.
    EXPECT_NE(a.server, a.attacker);
    EXPECT_NE(campaign::seeds_for_trial(42, 8).server, a.server);
    EXPECT_NE(campaign::seeds_for_trial(43, 7).server, a.server);
}

TEST(campaign_engine, report_identical_across_jobs_levels) {
    auto spec = small_spec();
    spec.jobs = 1;
    auto serial = campaign::engine{spec}.run();
    spec.jobs = 4;
    auto parallel = campaign::engine{spec}.run();
    EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(campaign_engine, report_identical_with_and_without_master_pool) {
    // The snapshot-reuse pool is a pure execution-speed knob: trials are a
    // function of their seeds alone, so routing them through recycled
    // masters must not move a single report byte — at any jobs level.
    auto spec = small_spec();
    spec.reuse_masters = true;
    spec.jobs = 4;
    const auto pooled = campaign::engine{spec}.run();
    spec.reuse_masters = false;
    const auto fresh = campaign::engine{spec}.run();
    EXPECT_EQ(pooled.to_json(), fresh.to_json());
    spec.reuse_masters = true;
    spec.jobs = 1;
    const auto pooled_serial = campaign::engine{spec}.run();
    EXPECT_EQ(pooled.to_json(), pooled_serial.to_json());
}

TEST(campaign_engine, pssp_detection_beats_ssp_on_byte_by_byte) {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::byte_by_byte};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 5;
    spec.master_seed = 2018;
    spec.query_budget = 4096;
    spec.jobs = 0;  // all cores
    const auto report = campaign::engine{spec}.run();

    const auto& ssp = find_cell(report, scheme_kind::ssp,
                                attack::attack_kind::byte_by_byte);
    const auto& pssp = find_cell(report, scheme_kind::p_ssp,
                                 attack::attack_kind::byte_by_byte);
    // SSP falls to byte-by-byte (shared canary across forks); P-SSP turns
    // every trial into a detected failure.
    EXPECT_GT(pssp.detection_rate, ssp.detection_rate);
    EXPECT_EQ(pssp.hijacks, 0u);
    EXPECT_GT(ssp.hijack_rate, 0.5);
    // The paper's expected cost on SSP: ~8 * 2^7 queries per compromise.
    EXPECT_GT(ssp.queries_to_compromise.count(), 0u);
    EXPECT_LT(ssp.queries_to_compromise.mean(), 2500.0);
}

TEST(campaign_engine, leak_replay_bytes_valid_separates_schemes) {
    campaign::campaign_spec spec;
    spec.schemes = {scheme_kind::ssp, scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 4;
    spec.master_seed = 5;
    spec.jobs = 0;
    const auto report = campaign::engine{spec}.run();

    const auto& ssp = find_cell(report, scheme_kind::ssp,
                                attack::attack_kind::leak_replay);
    const auto& pssp = find_cell(report, scheme_kind::p_ssp,
                                 attack::attack_kind::leak_replay);
    // A leaked SSP canary is the process canary: all 8 bytes stay valid.
    EXPECT_DOUBLE_EQ(ssp.leaked_bytes_valid.mean(), 8.0);
    EXPECT_DOUBLE_EQ(ssp.hijack_rate, 1.0);
    // P-SSP re-randomizes per fork: the leak goes stale almost entirely.
    EXPECT_LT(pssp.leaked_bytes_valid.mean(), 2.0);
}

TEST(campaign_engine, reduce_cell_statistics) {
    std::vector<campaign::trial_result> trials;
    for (int i = 0; i < 10; ++i) {
        campaign::trial_result t;
        t.hijacked = i < 3;
        t.detected = i >= 3;
        t.oracle_queries = static_cast<std::uint64_t>(100 + i);
        t.canary_detections = t.detected ? 5 : 0;
        t.other_crashes = 2;
        t.leaked_bytes_valid = static_cast<unsigned>(i % 2);
        trials.push_back(t);
    }
    const auto cell = campaign::reduce_cell(scheme_kind::ssp,
                                            attack::attack_kind::brute_force,
                                            workload::target_kind::nginx, trials);
    EXPECT_EQ(cell.trials, 10u);
    EXPECT_EQ(cell.hijacks, 3u);
    EXPECT_EQ(cell.detections, 7u);
    EXPECT_DOUBLE_EQ(cell.hijack_rate, 0.3);
    EXPECT_DOUBLE_EQ(cell.detection_rate, 0.7);
    EXPECT_EQ(cell.canary_detections, 35u);
    EXPECT_EQ(cell.other_crashes, 20u);
    EXPECT_EQ(cell.queries.count(), 10u);
    EXPECT_DOUBLE_EQ(cell.queries.mean(), 104.5);
    EXPECT_EQ(cell.queries_to_compromise.count(), 3u);
    EXPECT_DOUBLE_EQ(cell.queries_to_compromise.mean(), 101.0);
    // Wilson interval brackets the point estimate and stays in [0,1].
    EXPECT_GT(cell.detection_rate, cell.detection_ci.lo);
    EXPECT_LT(cell.detection_rate, cell.detection_ci.hi);
    EXPECT_GE(cell.detection_ci.lo, 0.0);
    EXPECT_LE(cell.detection_ci.hi, 1.0);
}

TEST(campaign_engine, rejects_empty_spec) {
    campaign::campaign_spec spec;
    EXPECT_THROW(campaign::engine{spec}, std::invalid_argument);
}

TEST(campaign_engine, rejects_brute_force_against_dcr) {
    // The brute-force payload model needs DCR's per-victim link offset,
    // which the campaign cannot derive; a silent 0.0 hijack rate would
    // masquerade as genuine prevention.
    auto spec = small_spec();
    spec.schemes.push_back(scheme_kind::dcr);
    spec.attacks.push_back(attack::attack_kind::brute_force);
    EXPECT_THROW(campaign::engine{spec}, std::invalid_argument);
}

}  // namespace
}  // namespace pssp
