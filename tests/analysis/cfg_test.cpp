// CFG recovery: block partitioning, edges, fused-pair walls, and the
// dynamic round-trip — every transfer the switch stepper actually executes
// on the differential oracle's random programs must be covered by the
// recovered graph.

#include <gtest/gtest.h>

#include <set>

#include "analysis/cfg.hpp"
#include "binfmt/image.hpp"
#include "vm/dispatch.hpp"
#include "vm/machine.hpp"
#include "vm/random_program.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::reg;

TEST(cfg, straight_line_is_one_block) {
    binfmt::image img;
    auto& f = img.add_function("f");
    f.emit({mov_ri(reg::rax, 1), add_ri(reg::rax, 2), ret()});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();
    const auto g = analysis::cfg::recover(*prog);

    ASSERT_EQ(g.blocks().size(), 1u);
    EXPECT_EQ(g.blocks()[0].first, 0u);
    EXPECT_EQ(g.blocks()[0].count, 3u);
    EXPECT_TRUE(g.blocks()[0].unknown_successors);  // ends in ret
    EXPECT_TRUE(g.blocks()[0].succs.empty());
}

TEST(cfg, diamond_has_branch_and_fallthrough_edges) {
    binfmt::image img;
    auto& f = img.add_function("f");
    const auto other = f.new_label();
    const auto join = f.new_label();
    f.emit({cmp_ri(reg::rdi, 0), je(other),      // block A
            mov_ri(reg::rax, 1), jmp(join)});    // block B (fallthrough arm)
    f.place(other);
    f.emit(mov_ri(reg::rax, 2));                 // block C (taken arm)
    f.place(join);
    f.emit(ret());                               // block D
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();
    const auto g = analysis::cfg::recover(*prog);

    ASSERT_EQ(g.blocks().size(), 4u);
    const auto& a = g.blocks()[0];
    ASSERT_EQ(a.succs.size(), 2u);
    std::set<analysis::edge_kind> kinds;
    for (const auto& e : a.succs) kinds.insert(e.kind);
    EXPECT_TRUE(kinds.contains(analysis::edge_kind::branch_taken));
    EXPECT_TRUE(kinds.contains(analysis::edge_kind::fallthrough));
    // The join block has both arms as predecessors.
    const auto join_id = g.block_of(prog->insns.size() - 1);
    EXPECT_EQ(g.blocks()[join_id].preds.size(), 2u);
}

TEST(cfg, call_blocks_get_target_and_return_edges) {
    binfmt::image img;
    auto& leaf = img.add_function("leaf");
    leaf.emit({add_ri(reg::rax, 1), ret()});
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym("leaf")), mov_ri(reg::rcx, 7), ret()});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();
    const auto g = analysis::cfg::recover(*prog);

    const auto call_block = g.block_of(prog->index_of(binary.symbols.at("f")));
    std::set<analysis::edge_kind> kinds;
    for (const auto& e : g.blocks()[call_block].succs) kinds.insert(e.kind);
    EXPECT_TRUE(kinds.contains(analysis::edge_kind::call_target));
    EXPECT_TRUE(kinds.contains(analysis::edge_kind::call_return));
}

TEST(cfg, jump_into_fused_pair_middle_splits_at_annotated_wall) {
    // cmp+je at the loop head is a fusable pair; a branch from below lands
    // exactly on the je — the pair's second half. Fusion must not change
    // the recovered blocks: the je starts its own block, annotated as a
    // fused entry, and the block ending at the cmp is a fused tail.
    binfmt::image img;
    auto& f = img.add_function("f");
    const auto mid = f.new_label();
    const auto out = f.new_label();
    f.emit(cmp_rr(reg::rax, reg::rcx));  // first half of the fused pair
    f.place(mid);
    f.emit({je(out),                     // second half; also a jump target
            add_ri(reg::rax, 1), jmp(mid)});
    f.place(out);
    f.emit(ret());
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();

    const auto first = prog->index_of(binary.symbols.at("f"));
    ASSERT_TRUE(vm::is_fused_handler(prog->code[first].handler))
        << "generator no longer fuses cmp_rr+je; test premise broken";

    const auto g = analysis::cfg::recover(*prog);
    const auto cmp_block = g.block_of(first);
    const auto je_block = g.block_of(first + 1);
    ASSERT_NE(cmp_block, je_block) << "jump target inside the pair must split";
    EXPECT_EQ(g.blocks()[je_block].first, first + 1);
    EXPECT_TRUE(g.blocks()[cmp_block].fused_tail);
    EXPECT_TRUE(g.blocks()[je_block].fused_entry);
}

TEST(cfg, covers_straight_line_and_rejects_wild_block_exits) {
    binfmt::image img;
    auto& f = img.add_function("f");
    const auto out = f.new_label();
    f.emit({mov_ri(reg::rax, 1), cmp_ri(reg::rax, 0), je(out), add_ri(reg::rax, 1)});
    f.place(out);
    f.emit(ret());
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();
    const auto g = analysis::cfg::recover(*prog);

    EXPECT_TRUE(g.covers_transfer(0, 1));    // interior straight line
    EXPECT_FALSE(g.covers_transfer(0, 3));   // interior cannot skip
    EXPECT_TRUE(g.covers_transfer(2, 3));    // je fallthrough edge
    EXPECT_TRUE(g.covers_transfer(2, 4));    // je taken edge
    EXPECT_FALSE(g.covers_transfer(2, 0));   // je cannot go backwards here
}

// The round-trip gate: execute the differential oracle's random programs
// one instruction at a time and demand the recovered graph covers every
// dynamic transfer — including wild rets into block interiors, which the
// graph must classify as unknown-successor exits.
TEST(cfg, random_programs_every_executed_edge_is_covered) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        auto img = testing::random_image(seed, /*body_len=*/60);
        const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
        const auto prog = binary.make_program();
        const auto g = analysis::cfg::recover(*prog);

        vm::machine m{prog, vm::memory::layout{}, /*entropy_seed=*/seed};
        m.set_dispatch(vm::dispatch_mode::switch_loop);
        m.set(reg::rdi, 5);
        m.set(reg::rsi, 9);
        m.call_function(binary.symbols.at("f"));
        m.set_fuel(3000);

        auto prev = prog->index_of(m.current_address());
        std::size_t transfers = 0;
        while (true) {
            const auto r = m.step();
            if (r.status != vm::exec_status::running) break;
            const auto cur = prog->index_of(m.current_address());
            ASSERT_NE(cur, vm::no_id) << "seed " << seed;
            EXPECT_TRUE(g.covers_transfer(prev, cur))
                << "seed " << seed << ": executed transfer " << prev << " -> "
                << cur << " missing from recovered CFG";
            prev = cur;
            ++transfers;
        }
        EXPECT_GT(transfers, 0u) << "seed " << seed;
    }
}

}  // namespace
}  // namespace pssp
