#include "attack/leak_replay.hpp"

#include "util/bytes.hpp"

namespace pssp::attack {

namespace {

void classify_crash(proc::worker_outcome outcome, leak_replay_result& result) {
    switch (outcome) {
        case proc::worker_outcome::crashed_canary:
            ++result.canary_crashes;
            break;
        case proc::worker_outcome::crashed_segv:
        case proc::worker_outcome::crashed_cf:
        case proc::worker_outcome::out_of_fuel:
            ++result.other_crashes;
            break;
        default:
            break;
    }
}

}  // namespace

leak_replay_result leak_replay::run(std::uint64_t ret_target, std::uint64_t saved_rbp) {
    leak_replay_result result;

    // Step 1: the leak query. The handler's over-read path dumps its stack
    // buffer *plus* the adjacent frame metadata into the response.
    std::uint8_t magic[8];
    util::store_le64(magic, leak_magic);
    const auto leak = oracle_.serve(std::span<const std::uint8_t>{magic, 8});
    ++result.trials;
    if (leak.output.size() < config_.leak_offset + config_.canary_bytes) return result;

    result.leaked_canary.assign(
        leak.output.begin() + static_cast<std::ptrdiff_t>(config_.leak_offset),
        leak.output.begin() +
            static_cast<std::ptrdiff_t>(config_.leak_offset + config_.canary_bytes));
    result.leak_succeeded = true;

    // Step 2: replay against a fresh worker.
    std::vector<std::uint8_t> payload(config_.prefix_bytes, 'A');
    payload.insert(payload.end(), result.leaked_canary.begin(),
                   result.leaked_canary.end());
    std::uint8_t w[8];
    util::store_le64(w, saved_rbp);
    payload.insert(payload.end(), w, w + 8);
    util::store_le64(w, ret_target);
    payload.insert(payload.end(), w, w + 8);

    const auto replay = oracle_.serve(payload);
    ++result.trials;
    result.hijacked = replay.outcome == proc::worker_outcome::hijacked;
    classify_crash(replay.outcome, result);

    // Step 3 (optional): quantify the leak's residual value. Overflowing
    // exactly k canary bytes with the leaked prefix kills the worker iff
    // any of those k bytes has gone stale — the same survival oracle the
    // byte-by-byte attack uses, pointed at our own leak. Probes are
    // measurement, not attack: they count in probe_queries, never trials,
    // so queries-to-compromise statistics stay paper-comparable.
    if (config_.probe_validity) {
        for (unsigned k = 1; k <= config_.canary_bytes; ++k) {
            std::vector<std::uint8_t> probe(config_.prefix_bytes, 'A');
            probe.insert(probe.end(), result.leaked_canary.begin(),
                         result.leaked_canary.begin() + k);
            const auto r = oracle_.serve(probe);
            ++result.probe_queries;
            if (r.outcome != proc::worker_outcome::ok) {
                classify_crash(r.outcome, result);
                break;
            }
            result.bytes_valid = k;
        }
    }
    return result;
}

}  // namespace pssp::attack
