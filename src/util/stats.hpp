// Statistics helpers used by the benchmark harnesses and property tests.
//
// All functions operate on plain double samples; the benchmark binaries
// collect modeled VM cycles or wall-clock nanoseconds into vectors and
// summarize them here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pssp::util {

// Summary of a sample set. Produced by summarize().
struct summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  // sample standard deviation (n-1)
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

// Arithmetic mean; 0.0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

// Sample standard deviation (Bessel-corrected); 0.0 for fewer than 2 samples.
[[nodiscard]] double stddev(std::span<const double> xs);

// Geometric mean; requires all samples > 0. Used for SPEC-style ratios.
[[nodiscard]] double geomean(std::span<const double> xs);

// q-th quantile (0 <= q <= 1) by linear interpolation on a sorted copy.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

// Full summary in one pass (plus one sort for the quantiles).
[[nodiscard]] summary summarize(std::span<const double> xs);

// Half-width of the 95% normal-approximation confidence interval.
[[nodiscard]] double ci95_half_width(std::span<const double> xs);

// Relative overhead of `measured` versus `baseline`, in percent.
// (measured - baseline) / baseline * 100.
[[nodiscard]] double overhead_percent(double baseline, double measured);

// Pearson chi-square statistic for observed bucket counts against a uniform
// expectation. Used by the Theorem-1 independence tests: if leaked C1 values
// were biased by the TLS canary, the statistic would blow past the critical
// value for (buckets-1) degrees of freedom.
[[nodiscard]] double chi_square_uniform(std::span<const std::size_t> observed);

// Approximate upper critical value of the chi-square distribution at the
// 0.001 significance level using the Wilson-Hilferty transformation.
// Conservative enough for the property tests' degrees of freedom (<= 4096).
[[nodiscard]] double chi_square_critical_999(std::size_t degrees_of_freedom);

// A closed interval estimate on a proportion or mean.
struct interval {
    double lo = 0.0;
    double hi = 0.0;

    // Half the interval width — the precision metric adaptive campaign
    // allocation stops on (campaign/allocator.hpp).
    [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
};

// Wilson score interval for a binomial proportion: `successes` out of `n`
// trials at confidence z (1.96 => 95%). Unlike the normal approximation it
// stays inside [0,1] and behaves at rates near 0 or 1 — exactly the regime
// of detection-rate campaigns (P-SSP detection rates sit at ~1.0, SSP
// byte-by-byte hijack rates at ~1.0). Returns {0,1} degenerate bounds for
// n == 0.
[[nodiscard]] interval wilson_interval(std::size_t successes, std::size_t n,
                                       double z = 1.96);

// Online accumulator (Welford) for streaming measurements where keeping all
// samples would be wasteful, e.g. per-request latencies in the server bench
// or per-trial oracle-query counts in a campaign reduction. merge() combines
// two accumulators (Chan et al. pairwise update), so shards reduced
// per-worker and re-merged in a fixed order give bit-identical results.
class welford_accumulator {
  public:
    // The raw recurrence state. Exposed so accumulators can cross process
    // boundaries (dist/ wire format) without losing a single bit: restore()
    // of a save()d state is the identical accumulator, and merging restored
    // halves reproduces the in-process merge exactly.
    struct state {
        std::uint64_t n = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
        double total = 0.0;
    };
    [[nodiscard]] state save() const noexcept;
    [[nodiscard]] static welford_accumulator restore(const state& s) noexcept;

    void add(double x) noexcept;
    void merge(const welford_accumulator& other) noexcept;
    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double total() const noexcept { return total_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double total_ = 0.0;
};

// Historical name, kept for the benches that predate the campaign engine.
using accumulator = welford_accumulator;

}  // namespace pssp::util
