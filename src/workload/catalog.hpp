// Named workload registry: one place that maps the workload names used on
// tool command lines (tools_analyze, CI matrices) to the IR modules the
// factories in this directory build. Keeps "nginx" meaning the same
// module in every tool.
#pragma once

#include <string>
#include <vector>

#include "compiler/ir.hpp"

namespace pssp::workload {

struct catalog_entry {
    std::string name;         // CLI name ("nginx", "mysql", "spec_int", ...)
    std::string description;  // one line for --help output
};

// All named workloads, in presentation order.
[[nodiscard]] const std::vector<catalog_entry>& workload_catalog();

// Builds the named workload's module. Throws std::invalid_argument for
// names not in the catalog. "spec_int" / "spec_fp" build the first
// benchmark of the respective SPEC2006 half — a representative member,
// since every profile lowers through the same module shape.
[[nodiscard]] compiler::ir_module make_catalog_module(const std::string& name);

}  // namespace pssp::workload
