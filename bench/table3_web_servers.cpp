// Table III: P-SSP's impact on web-server response time.
//
// Paper row (avg ms/request): Apache2 33.006 / 33.008 / 33.099;
//                             Nginx    3.088 /  3.090 /  3.088.
// Method: the apache2_m / nginx_m fork-per-request servers answer a batch
// of benign requests under three builds — native, compiler P-SSP, and
// instrumented P-SSP — and we report the mean per-request worker cost in
// modeled cycles. The paper's point (the canary work is invisible inside a
// full request) reproduces as near-identical columns.

#include <vector>

#include "bench_util.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

constexpr int requests_per_server = 400;

double mean_request_cycles(proc::fork_server& server) {
    util::accumulator acc;
    for (int i = 0; i < requests_per_server; ++i) {
        const auto r = server.serve("GET /index.html HTTP/1.1");
        if (r.outcome != proc::worker_outcome::ok) {
            std::printf("!! worker failed: %s\n", to_string(r.outcome).c_str());
            return -1.0;
        }
        acc.add(static_cast<double>(r.worker_cycles));
    }
    return acc.mean();
}

}  // namespace

// The latency experiment uses full-transaction request weights (the paper
// measures ~33 ms Apache and ~3 ms Nginx requests). The attack benches keep
// the default lightweight profiles — the oracle only needs the overflow.
workload::server_profile latency_profile(workload::server_profile base,
                                         std::uint64_t scale) {
    base.parse_iters *= scale;
    base.response_iters *= scale;
    return base;
}

int main() {
    bench::print_header("Table III — web server response cost per request",
                        "Table III (Apache 33.006/33.008/33.099 ms; Nginx ~3.09 ms)");

    util::text_table table{{"server", "Native Execution", "Compiler based P-SSP",
                            "Instrumentation based P-SSP"}};

    for (const auto& profile :
         {latency_profile(workload::apache_profile(), 40),
          latency_profile(workload::nginx_profile(), 40)}) {
        bench::server_under_test native{profile, scheme_kind::none, 11};
        bench::server_under_test compiled{profile, scheme_kind::p_ssp, 12};
        bench::instrumented_server_under_test instrumented{profile, 13};

        const double n = mean_request_cycles(native.server);
        const double c = mean_request_cycles(compiled.server);
        const double i = mean_request_cycles(instrumented.server);
        table.add_row({profile.name, util::fmt(n, 1), util::fmt(c, 1),
                       util::fmt(i, 1)});
        std::printf("%s: overhead compiler %s, instrumented %s\n",
                    profile.name.c_str(),
                    util::fmt_percent(util::overhead_percent(n, c)).c_str(),
                    util::fmt_percent(util::overhead_percent(n, i)).c_str());
    }

    std::printf("\n%s\n",
                table.render("Average per-request worker cost (modeled cycles)").c_str());
    std::printf("paper: differences are in the per-mille range — the canary work\n"
                "amortizes to noise inside a full web transaction. Expect the same\n"
                "shape in the columns above.\n");
    return 0;
}
