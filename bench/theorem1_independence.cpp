// Theorem 1: the adversary gains no advantage on the TLS canary C from
// observing the C1 halves of arbitrarily many child processes —
// Pr(C) = Pr(C | C1^1 ... C1^n).
//
// Empirical check at the *system* level: the nginx_m server's over-read
// path leaks each worker's stack canary pair; we harvest C1 across
// thousands of forks and test
//   (a) uniformity of the observed C1 bytes (chi-square, p = 0.001),
//   (b) uniformity of the *derived* C0 = C1 xor C (the split really is a
//       fresh one-time pad each fork),
//   (c) no repeat advantage: the number of colliding C1 values matches the
//       birthday bound, i.e. the stream is not degenerate.

#include <unordered_set>
#include <vector>

#include "attack/leak_replay.hpp"
#include "bench_util.hpp"
#include "core/tls_layout.hpp"
#include "util/bytes.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;

constexpr int forks = 3000;

}  // namespace

int main() {
    bench::print_header("Theorem 1 — leaked C1 halves carry no information about C",
                        "Theorem 1 (Section III-C-2)");

    const auto profile = workload::nginx_profile();
    bench::server_under_test sut{profile, core::scheme_kind::p_ssp, 41};
    const std::uint64_t c = core::tls_load(sut.server.master(), core::tls_canary);
    const std::uint64_t leak_off = workload::attack_prefix_bytes(profile);

    std::uint8_t magic[8];
    util::store_le64(magic, attack::leak_magic);

    std::vector<std::uint64_t> c1_samples;
    c1_samples.reserve(forks);
    for (int i = 0; i < forks; ++i) {
        const auto r = sut.server.serve(std::span<const std::uint8_t>{magic, 8});
        if (r.outcome != proc::worker_outcome::ok) continue;
        // P-SSP frame slice above the buffer: [C1][C0] (C1 at rbp-16).
        const std::uint64_t c1 = util::load_le64(std::span{
            reinterpret_cast<const std::uint8_t*>(r.output.data() + leak_off), 8});
        c1_samples.push_back(c1);
    }
    std::printf("collected %zu C1 observations across %d forks (C = %s)\n\n",
                c1_samples.size(), forks, util::hex64(c).c_str());

    util::text_table table{{"statistic", "value", "chi^2", "critical (p=.001)", "verdict"}};
    bool all_ok = true;
    for (int byte_index : {0, 3, 7}) {
        std::vector<std::size_t> buckets(256, 0);
        std::vector<std::size_t> buckets_c0(256, 0);
        for (const std::uint64_t c1 : c1_samples) {
            ++buckets[util::byte_of(c1, static_cast<unsigned>(byte_index))];
            ++buckets_c0[util::byte_of(c1 ^ c, static_cast<unsigned>(byte_index))];
        }
        const double crit = util::chi_square_critical_999(255);
        const double stat_c1 = util::chi_square_uniform(buckets);
        const double stat_c0 = util::chi_square_uniform(buckets_c0);
        all_ok = all_ok && stat_c1 < crit && stat_c0 < crit;
        table.add_row({"C1 byte " + std::to_string(byte_index), "uniform?",
                       util::fmt(stat_c1, 1), util::fmt(crit, 1),
                       stat_c1 < crit ? "uniform" : "BIASED"});
        table.add_row({"C0=C1^C byte " + std::to_string(byte_index), "uniform?",
                       util::fmt(stat_c0, 1), util::fmt(crit, 1),
                       stat_c0 < crit ? "uniform" : "BIASED"});
    }

    // Degeneracy check: distinct C1 values should be ~all of them.
    std::unordered_set<std::uint64_t> distinct{c1_samples.begin(), c1_samples.end()};
    table.add_row({"distinct C1 values", std::to_string(distinct.size()) + " / " +
                                             std::to_string(c1_samples.size()),
                   "-", "-",
                   distinct.size() == c1_samples.size() ? "no repeats" : "REPEATS"});

    std::printf("%s\n", table.render("Independence of leaked shadow halves").c_str());
    std::printf("%s\n", all_ok
                            ? "PASS: observations are consistent with Theorem 1 — the "
                              "conditional\ndistribution of C given the leaked C1 values "
                              "stays uniform."
                            : "FAIL: bias detected — Theorem 1 violated!");
    return all_ok ? 0 : 1;
}
