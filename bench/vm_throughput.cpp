// VM and trial-pool throughput — the perf counters behind the campaign
// engine's wall-clock.
//
// Three measurements, emitted human-readable and as machine-readable JSON
// (BENCH_vm.json) so perf regressions are visible PR-over-PR:
//   * steps/sec      — raw interpreter speed on a compute+stack-traffic
//                      loop, A/B'd across the two dispatch engines:
//                      direct-threaded (decoded-op stream, fused
//                      superinstructions, batched accounting) vs the
//                      legacy per-instruction switch stepper;
//   * trials/sec     — end-to-end "boot a fork server, serve one request"
//                      trials, fresh-boot vs pool-reused masters;
//   * amortization   — pooled / fresh trials-per-sec ratio, i.e. how much
//                      of a trial's cost the snapshot-reuse pool recovers.
// The fresh and pooled oracles are byte-identical per seed (the pool
// contract); this bench additionally cross-checks the served outputs.
// The two dispatch engines are byte-identical too (pinned by ctest);
// here they only differ in wall-clock.
//
//   bench_vm_throughput [--steps N] [--dispatch both|threaded|switch]
//                       [--boot-trials N] [--seed S] [--json PATH|-]
//                       [--min-ratio R] [--min-steps-ratio R]
//                       [--profile] [--max-obs-overhead P]
//
// --min-ratio R exits nonzero if any scheme's amortization ratio falls
// below R — the CI smoke uses it to pin the >= 3x acceptance floor.
// --min-steps-ratio R exits nonzero if threaded dispatch delivers fewer
// than R times the switch stepper's steps/sec (CI floor: 1.5x).
//
// --profile attaches a vm::exec_profile to the spinner and prints the
// per-handler heat table (hits, cycles, cycle share — superinstructions
// included), plus the proc-layer obs counters the boot trials generated
// (pool boots/reuses, fork/reboot dirty pages).
//
// --max-obs-overhead P is the telemetry idle-cost gate: it A/Bs threaded
// steps/sec with tracing off vs globally enabled (best-of-3 each; the VM
// hot loop carries no span sites, so "enabled" must cost nothing there)
// and exits nonzero if the regression exceeds P percent. The measurement
// lands in BENCH_vm.json's "obs" block either way.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "binfmt/image.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "vm/machine.hpp"
#include "workload/victim.hpp"

namespace {

using namespace pssp;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

// A busy loop mixing ALU, stack traffic, loads/stores, calls and branches —
// roughly the instruction diet of a protected request handler.
vm::machine make_spinner(std::uint64_t iterations) {
    using namespace vm::isa;
    using vm::reg;

    binfmt::image img;
    const auto leaf_sym = img.sym("leaf");

    auto& leaf = img.add_function("leaf");
    leaf.emit(add_ri(reg::rax, 3));
    leaf.emit(ret());

    auto& spin = img.add_function("spin");
    const auto loop = spin.new_label();
    spin.emit(push_r(reg::rbp));
    spin.emit(mov_rr(reg::rbp, reg::rsp));
    spin.emit(sub_ri(reg::rsp, 64));
    spin.emit(mov_ri(reg::rax, 0));
    spin.place(loop);
    spin.emit(mov_mr(mem(reg::rsp, 8), reg::rax));
    spin.emit(xor_ri(reg::rax, 0x5a5a));
    spin.emit(mov_rm(reg::rcx, mem(reg::rsp, 8)));
    spin.emit(add_rr(reg::rax, reg::rcx));
    spin.emit(call_sym(leaf_sym));
    spin.emit(sub_ri(reg::rdi, 1));
    spin.emit(cmp_ri(reg::rdi, 0));
    spin.emit(jne(loop));
    spin.emit(leave());
    spin.emit(ret());

    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    vm::machine m{binary.make_program(), vm::memory::layout{}, /*entropy_seed=*/1};
    m.call_function(binary.symbols.at("spin"));
    m.set(reg::rdi, iterations);
    return m;
}

// Steps/sec of one dispatch engine on the spinner diet. A fresh machine
// per mode: the measurement is cold-state fair and the two runs cannot
// share sticky results.
double measure_steps_per_sec(vm::dispatch_mode mode, std::uint64_t steps) {
    auto spinner = make_spinner(steps / 9 + 1);
    spinner.set_dispatch(mode);
    spinner.set_fuel(steps);
    const auto start = clock_type::now();
    (void)spinner.run();
    const double secs = seconds_since(start);
    return static_cast<double>(spinner.steps()) / secs;
}

// Best-of-N: the obs overhead gate compares two near-identical code paths,
// so each side gets its least-noisy run.
double best_steps_per_sec(vm::dispatch_mode mode, std::uint64_t steps,
                          int reps) {
    double best = 0.0;
    for (int r = 0; r < reps; ++r)
        best = std::max(best, measure_steps_per_sec(mode, steps));
    return best;
}

// Runs the spinner once with a vm::exec_profile attached and prints the
// per-handler heat table — which handlers (fused superinstructions
// included) the diet actually hits, and where the simulated cycles go.
void print_profile(std::uint64_t steps) {
    auto profile = std::make_shared<vm::exec_profile>();
    auto spinner = make_spinner(steps / 9 + 1);
    spinner.set_dispatch(vm::dispatch_mode::threaded);
    spinner.set_profile(profile);
    spinner.set_fuel(steps);
    (void)spinner.run();

    std::uint64_t total_hits = 0;
    std::uint64_t total_cycles = 0;
    std::vector<std::uint16_t> order;
    for (std::uint16_t h = 0; h < vm::hop::count; ++h) {
        if (profile->hits[h] == 0) continue;
        order.push_back(h);
        total_hits += profile->hits[h];
        total_cycles += profile->cycles[h];
    }
    std::sort(order.begin(), order.end(), [&](std::uint16_t a, std::uint16_t b) {
        return profile->cycles[a] > profile->cycles[b];
    });
    std::printf("per-handler execution profile (threaded dispatch):\n");
    std::printf("  %-22s %12s %12s %7s\n", "handler", "hits", "cycles", "cyc%");
    for (const auto h : order)
        std::printf("  %-22s %12llu %12llu %6.2f%%\n", vm::handler_name(h),
                    static_cast<unsigned long long>(profile->hits[h]),
                    static_cast<unsigned long long>(profile->cycles[h]),
                    100.0 * static_cast<double>(profile->cycles[h]) /
                        static_cast<double>(std::max<std::uint64_t>(
                            total_cycles, 1)));
    std::printf("  %-22s %12llu %12llu\n\n", "(total)",
                static_cast<unsigned long long>(total_hits),
                static_cast<unsigned long long>(total_cycles));
}

// The proc-layer counters the boot trials above just generated — the
// pool/reboot/dirty-page view of the same work.
void print_proc_metrics() {
#if PSSP_OBS
    std::printf("proc-layer obs counters (this process):\n");
    for (const auto& m : obs::snapshot()) {
        if (m.name.rfind("proc.", 0) != 0) continue;
        if (m.type == obs::metric_type::histogram)
            std::printf("  %-28s count %8llu  sum %10llu  mean %10.1f\n",
                        m.name.c_str(),
                        static_cast<unsigned long long>(m.count),
                        static_cast<unsigned long long>(m.sum),
                        m.count != 0 ? static_cast<double>(m.sum) /
                                           static_cast<double>(m.count)
                                     : 0.0);
        else
            std::printf("  %-28s %llu\n", m.name.c_str(),
                        static_cast<unsigned long long>(m.value));
    }
    std::printf("\n");
#else
    std::printf("proc-layer obs counters unavailable (built with PSSP_OBS=0)\n\n");
#endif
}

struct pool_sample {
    std::string scheme;
    double fresh_trials_per_sec = 0.0;
    double pooled_trials_per_sec = 0.0;
    double ratio = 0.0;
};

pool_sample measure_pool(core::scheme_kind kind, std::uint64_t trials,
                         std::uint64_t seed) {
    const auto victim = workload::make_victim(workload::target_kind::nginx, kind);
    const std::string request = "GET /index HTTP/1.0";
    pool_sample sample;
    sample.scheme = core::to_string(kind);

    std::string fresh_output;
    const auto fresh_start = clock_type::now();
    for (std::uint64_t t = 0; t < trials; ++t) {
        auto server = victim.make_server(seed + t);
        fresh_output = server.serve(request).output;
    }
    const double fresh_secs = seconds_since(fresh_start);

    // Warm the pool (first acquire pays the one construction boot), then
    // measure steady-state reuse.
    { auto warm = victim.lease_server(seed); }
    std::string pooled_output;
    const auto pooled_start = clock_type::now();
    for (std::uint64_t t = 0; t < trials; ++t) {
        auto lease = victim.lease_server(seed + t);
        pooled_output = lease->serve(request).output;
    }
    const double pooled_secs = seconds_since(pooled_start);

    if (pooled_output != fresh_output) {
        std::fprintf(stderr,
                     "FATAL: pooled and fresh servers diverged under %s\n",
                     sample.scheme.c_str());
        std::exit(1);
    }

    sample.fresh_trials_per_sec = static_cast<double>(trials) / fresh_secs;
    sample.pooled_trials_per_sec = static_cast<double>(trials) / pooled_secs;
    sample.ratio = sample.pooled_trials_per_sec / sample.fresh_trials_per_sec;
    return sample;
}

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--steps N] [--dispatch both|threaded|switch]\n"
                 "          [--boot-trials N] [--seed S]\n"
                 "          [--json PATH|-] [--min-ratio R] [--min-steps-ratio R]\n"
                 "  --steps N        interpreter steps to time (default 4000000)\n"
                 "  --dispatch M     measure one dispatch engine or A/B both\n"
                 "                   (default both)\n"
                 "  --boot-trials N  boot+serve trials per scheme and mode\n"
                 "                   (default 300)\n"
                 "  --seed S         base seed (default 2018)\n"
                 "  --json PATH      write BENCH_vm.json ('-' = stdout)\n"
                 "  --min-ratio R    fail if any boot-amortization ratio < R\n"
                 "  --min-steps-ratio R  fail if threaded steps/sec < R x the\n"
                 "                   switch stepper's (needs --dispatch both)\n"
                 "  --profile        per-handler hit/cycle heat table (incl.\n"
                 "                   superinstructions) + proc obs counters\n"
                 "  --max-obs-overhead P  fail if enabling telemetry costs the\n"
                 "                   threaded interpreter more than P%% in\n"
                 "                   steps/sec (best-of-3 A/B; idle gate)\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t steps = 4'000'000;
    std::uint64_t boot_trials = 300;
    std::uint64_t seed = 2018;
    const char* json_path = nullptr;
    double min_ratio = 0.0;
    double min_steps_ratio = 0.0;
    double max_obs_overhead = -1.0;
    bool profile = false;
    const char* dispatch_arg = "both";

    for (int i = 1; i < argc; ++i) {
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--steps")) {
            steps = std::strtoull(next_value("--steps"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--boot-trials")) {
            boot_trials = std::strtoull(next_value("--boot-trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--seed")) {
            seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next_value("--json");
        } else if (!std::strcmp(argv[i], "--min-ratio")) {
            min_ratio = std::strtod(next_value("--min-ratio"), nullptr);
        } else if (!std::strcmp(argv[i], "--min-steps-ratio")) {
            min_steps_ratio = std::strtod(next_value("--min-steps-ratio"), nullptr);
        } else if (!std::strcmp(argv[i], "--dispatch")) {
            dispatch_arg = next_value("--dispatch");
        } else if (!std::strcmp(argv[i], "--profile")) {
            profile = true;
        } else if (!std::strcmp(argv[i], "--max-obs-overhead")) {
            max_obs_overhead =
                std::strtod(next_value("--max-obs-overhead"), nullptr);
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    bench::print_header("VM / trial-pool throughput",
                        "simulator performance engineering (no paper figure; "
                        "feeds every campaign-scale measurement)");

    // ---- interpreter steps/sec, per dispatch engine ----
    const bool want_threaded = !std::strcmp(dispatch_arg, "both") ||
                               !std::strcmp(dispatch_arg, "threaded");
    const bool want_switch = !std::strcmp(dispatch_arg, "both") ||
                             !std::strcmp(dispatch_arg, "switch");
    if (!want_threaded && !want_switch) {
        std::fprintf(stderr, "--dispatch must be both, threaded or switch\n");
        return 2;
    }
    if (min_steps_ratio > 0.0 && !(want_threaded && want_switch)) {
        std::fprintf(stderr, "--min-steps-ratio needs --dispatch both\n");
        return 2;
    }
    double threaded_steps_per_sec = 0.0;
    double switch_steps_per_sec = 0.0;
    if (want_switch) {
        switch_steps_per_sec =
            measure_steps_per_sec(vm::dispatch_mode::switch_loop, steps);
        std::printf("interpreter (switch):   %.2fM steps/sec\n",
                    switch_steps_per_sec / 1e6);
    }
    if (want_threaded) {
        threaded_steps_per_sec =
            measure_steps_per_sec(vm::dispatch_mode::threaded, steps);
        std::printf("interpreter (threaded): %.2fM steps/sec\n",
                    threaded_steps_per_sec / 1e6);
    }
    const double steps_per_sec =
        want_threaded ? threaded_steps_per_sec : switch_steps_per_sec;
    const double dispatch_ratio =
        (want_threaded && want_switch && switch_steps_per_sec > 0.0)
            ? threaded_steps_per_sec / switch_steps_per_sec
            : 0.0;
    if (dispatch_ratio > 0.0)
        std::printf("threaded/switch dispatch speedup: %.2fx\n", dispatch_ratio);
    std::printf("\n");

    // ---- telemetry idle cost: tracing off vs globally enabled ----
    // The VM hot loop has no span or counter sites, so flipping the global
    // tracing switch must not move steps/sec. Measured whenever the gate
    // or the JSON is requested; gate applied at the end.
    double obs_overhead_percent = 0.0;
    double traced_steps_per_sec = 0.0;
    double idle_steps_per_sec = 0.0;
    if (max_obs_overhead >= 0.0 || json_path != nullptr) {
        idle_steps_per_sec =
            best_steps_per_sec(vm::dispatch_mode::threaded, steps, 3);
        obs::enable_tracing(true);
        traced_steps_per_sec =
            best_steps_per_sec(vm::dispatch_mode::threaded, steps, 3);
        obs::enable_tracing(false);
        obs_overhead_percent =
            100.0 * (idle_steps_per_sec - traced_steps_per_sec) /
            idle_steps_per_sec;
        std::printf("telemetry idle overhead: %.2f%% (tracing off %.2fM, "
                    "tracing on %.2fM steps/sec)\n\n",
                    obs_overhead_percent, idle_steps_per_sec / 1e6,
                    traced_steps_per_sec / 1e6);
    }

    if (profile) print_profile(steps);

    // ---- boot amortization, fresh vs pooled ----
    std::vector<pool_sample> samples;
    for (const auto kind : {core::scheme_kind::ssp, core::scheme_kind::p_ssp}) {
        const auto s = measure_pool(kind, boot_trials, seed);
        std::printf("%-10s fresh %8.0f trials/sec | pooled %8.0f trials/sec "
                    "| amortization %.2fx\n",
                    s.scheme.c_str(), s.fresh_trials_per_sec,
                    s.pooled_trials_per_sec, s.ratio);
        samples.push_back(s);
    }
    std::printf(
        "\n(one trial = boot a fork server + serve one request; pooled mode\n"
        " reuses a parked master via snapshot restore + seed re-derivation)\n");
    if (profile) {
        std::printf("\n");
        print_proc_metrics();
    }

    std::ostringstream json;
    json << "{\n  \"bench\": \"vm_throughput\",\n";
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "  \"steps\": %llu,\n  \"steps_per_sec\": %.0f,\n",
                  static_cast<unsigned long long>(steps), steps_per_sec);
    json << buf;
    if (want_threaded && want_switch) {
        std::snprintf(buf, sizeof buf,
                      "  \"dispatch\": {\"threaded_steps_per_sec\": %.0f, "
                      "\"switch_steps_per_sec\": %.0f, "
                      "\"threaded_over_switch\": %.3f},\n",
                      threaded_steps_per_sec, switch_steps_per_sec,
                      dispatch_ratio);
        json << buf;
    }
    if (idle_steps_per_sec > 0.0) {
        std::snprintf(buf, sizeof buf,
                      "  \"obs\": {\"idle_steps_per_sec\": %.0f, "
                      "\"traced_steps_per_sec\": %.0f, "
                      "\"idle_overhead_percent\": %.2f},\n",
                      idle_steps_per_sec, traced_steps_per_sec,
                      obs_overhead_percent);
        json << buf;
    }
    std::snprintf(buf, sizeof buf, "  \"boot_trials\": %llu,\n  \"cells\": [\n",
                  static_cast<unsigned long long>(boot_trials));
    json << buf;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const auto& s = samples[i];
        std::snprintf(buf, sizeof buf,
                      "    {\"scheme\": \"%s\", \"fresh_trials_per_sec\": %.1f, "
                      "\"pooled_trials_per_sec\": %.1f, "
                      "\"boot_amortization_ratio\": %.3f}%s\n",
                      s.scheme.c_str(), s.fresh_trials_per_sec,
                      s.pooled_trials_per_sec, s.ratio,
                      i + 1 < samples.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";

    if (json_path != nullptr) {
        if (!std::strcmp(json_path, "-")) {
            std::printf("%s", json.str().c_str());
        } else {
            std::ofstream out{json_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", json_path);
                return 1;
            }
            out << json.str();
        }
    }

    if (max_obs_overhead >= 0.0 && obs_overhead_percent > max_obs_overhead) {
        std::fprintf(stderr,
                     "FAIL: telemetry idle overhead %.2f%% > allowed %.2f%%\n",
                     obs_overhead_percent, max_obs_overhead);
        return 1;
    }
    if (min_steps_ratio > 0.0 && dispatch_ratio < min_steps_ratio) {
        std::fprintf(stderr,
                     "FAIL: threaded dispatch %.2fx over switch < required %.2fx\n",
                     dispatch_ratio, min_steps_ratio);
        return 1;
    }
    if (min_ratio > 0.0) {
        for (const auto& s : samples) {
            if (s.ratio < min_ratio) {
                std::fprintf(stderr,
                             "FAIL: %s boot-amortization %.2fx < required %.2fx\n",
                             s.scheme.c_str(), s.ratio, min_ratio);
                return 1;
            }
        }
    }
    return 0;
}
