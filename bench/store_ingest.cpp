// Result-store ingest overhead — the cost of the campaign observatory.
//
// A/Bs the same sharded campaign with the store side channel off vs on
// (block ingest + round summaries + finalize, the tools_campaign_shard
// --store wiring), best-of-N wall time each side, and reports the
// relative overhead. The store's contract is that it is a strict side
// channel: the report bytes are asserted identical both ways, the
// store's reconstructed report is asserted identical to both, and the
// wall-clock cost is the only thing allowed to move — bounded by
// --max-overhead in CI.
//
//   bench_store_ingest [--trials N] [--shards N] [--reps N] [--seed S]
//                      [--json PATH|-] [--max-overhead P]
//
// Emits BENCH_store.json via --json for PR-over-PR tracking.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <unistd.h>

#include "bench_util.hpp"
#include "dist/orchestrator.hpp"
#include "store/query.hpp"
#include "store/store.hpp"

namespace {

using namespace pssp;
using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
    return std::chrono::duration<double>(clock_type::now() - start).count();
}

campaign::campaign_spec bench_spec(std::uint64_t trials, std::uint64_t seed) {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = trials;
    spec.master_seed = seed;
    spec.query_budget = 512;
    return spec;
}

dist::sharded_options bench_options(unsigned shards) {
    dist::sharded_options options;
    options.shards = shards;
    options.flight_recorder = false;
    return options;
}

std::string fresh_store_dir(int rep) {
    const char* tmp = std::getenv("TMPDIR");
    return std::string{tmp != nullptr ? tmp : "/tmp"} + "/pssp-bench-store-" +
           std::to_string(::getpid()) + "-" + std::to_string(rep);
}

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--trials N] [--shards N] [--reps N] [--seed S]\n"
                 "          [--json PATH|-] [--max-overhead P]\n"
                 "  --trials N       trials per cell (default 192)\n"
                 "  --shards N       worker shards (default 2)\n"
                 "  --reps N         repetitions per side, best kept "
                 "(default 3)\n"
                 "  --seed S         master seed (default 2018)\n"
                 "  --json PATH      write BENCH_store.json ('-' = stdout)\n"
                 "  --max-overhead P fail if store-on wall time exceeds\n"
                 "                   store-off by more than P%%\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t trials = 192;
    unsigned shards = 2;
    int reps = 3;
    std::uint64_t seed = 2018;
    const char* json_path = nullptr;
    double max_overhead = -1.0;

    for (int i = 1; i < argc; ++i) {
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--trials")) {
            trials = std::strtoull(next_value("--trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--shards")) {
            shards = static_cast<unsigned>(
                std::strtoul(next_value("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--reps")) {
            reps = static_cast<int>(
                std::strtol(next_value("--reps"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--seed")) {
            seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next_value("--json");
        } else if (!std::strcmp(argv[i], "--max-overhead")) {
            max_overhead = std::strtod(next_value("--max-overhead"), nullptr);
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    bench::print_header(
        "result-store ingest overhead",
        "the campaign observatory must be a strict side channel: identical "
        "report bytes, bounded wall-clock cost");

    const auto spec = bench_spec(trials, seed);
    std::string off_report;
    std::string on_report;
    double best_off = 0.0;
    double best_on = 0.0;
    std::uint64_t store_blocks = 0;

    // Alternate sides so drift (page cache, CPU clocks) hits both evenly.
    for (int rep = 0; rep < reps; ++rep) {
        {
            const auto start = clock_type::now();
            const auto report = dist::run_sharded(spec, bench_options(shards));
            const double secs = seconds_since(start);
            if (best_off == 0.0 || secs < best_off) best_off = secs;
            off_report = report.to_json();
        }
        {
            const auto dir = fresh_store_dir(rep);
            auto options = bench_options(shards);
            auto writer = store::store_writer::open(dir, spec, false);
            options.block_ingest =
                [&writer](std::uint64_t round,
                          std::span<const dist::partial_block> blocks) {
                    writer.ingest_blocks(round, blocks);
                };
            options.round_observer =
                [&writer](const obs::round_summary& round) {
                    writer.ingest_round(round);
                };
            const auto start = clock_type::now();
            const auto report = dist::run_sharded(spec, options);
            writer.finalize(report, "{}");
            const double secs = seconds_since(start);
            if (best_on == 0.0 || secs < best_on) best_on = secs;
            on_report = report.to_json();
            store_blocks = writer.ingested_blocks();

            // The identity oracle, every rep: the store alone rebuilds
            // the report byte for byte.
            const auto data = store::load_store(dir);
            if (store::reconstruct_report(data).to_json() != on_report) {
                std::fprintf(stderr,
                             "FATAL: store reconstruction diverged from the "
                             "campaign report\n");
                return 1;
            }
            std::error_code ec;
            std::filesystem::remove_all(dir, ec);
        }
        if (off_report != on_report) {
            std::fprintf(stderr,
                         "FATAL: store ingest moved the report bytes\n");
            return 1;
        }
    }

    const double overhead_percent =
        100.0 * (best_on - best_off) / best_off;
    std::printf("campaign (%llu trials/cell, %u shards), best of %d:\n",
                static_cast<unsigned long long>(trials), shards, reps);
    std::printf("  store off: %.3f s\n", best_off);
    std::printf("  store on:  %.3f s  (%llu blocks ingested)\n", best_on,
                static_cast<unsigned long long>(store_blocks));
    std::printf("  ingest overhead: %.2f%%\n", overhead_percent);
    std::printf("  report bytes: identical; reconstruction: identical\n");

    if (json_path != nullptr) {
        std::ostringstream json;
        char buf[256];
        json << "{\n  \"bench\": \"store_ingest\",\n";
        std::snprintf(buf, sizeof buf,
                      "  \"trials_per_cell\": %llu,\n  \"shards\": %u,\n"
                      "  \"reps\": %d,\n",
                      static_cast<unsigned long long>(trials), shards, reps);
        json << buf;
        std::snprintf(buf, sizeof buf,
                      "  \"store_off_seconds\": %.4f,\n"
                      "  \"store_on_seconds\": %.4f,\n"
                      "  \"ingested_blocks\": %llu,\n"
                      "  \"overhead_percent\": %.2f,\n"
                      "  \"report_identical\": true\n}\n",
                      best_off, best_on,
                      static_cast<unsigned long long>(store_blocks),
                      overhead_percent);
        json << buf;
        if (!std::strcmp(json_path, "-")) {
            std::printf("%s", json.str().c_str());
        } else {
            std::ofstream out{json_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", json_path);
                return 1;
            }
            out << json.str();
        }
    }

    if (max_overhead >= 0.0 && overhead_percent > max_overhead) {
        std::fprintf(stderr,
                     "FAIL: store ingest overhead %.2f%% > allowed %.2f%%\n",
                     overhead_percent, max_overhead);
        return 1;
    }
    return 0;
}
