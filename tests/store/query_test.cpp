// The store format and query engine as units: log-line armor, manifest
// and segment round trips (segment encoding must be a pure function of
// its rows — that purity is what recovery's rebuild-from-log leans on),
// block dedup order, filters, and aggregation recomputed from integer
// tallies matching the campaign's own finalized cells.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "campaign/engine.hpp"
#include "dist/wire.hpp"
#include "store/format.hpp"
#include "store/query.hpp"
#include "store/store.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

std::string fresh_dir(const char* tag) {
    static int serial = 0;
    return ::testing::TempDir() + "pssp-query-" + tag + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(serial++);
}

campaign::campaign_spec small_spec() {
    campaign::campaign_spec spec;
    spec.schemes = {core::scheme_kind::ssp, core::scheme_kind::p_ssp};
    spec.attacks = {attack::attack_kind::leak_replay,
                    attack::attack_kind::brute_force};
    spec.targets = {workload::target_kind::nginx};
    spec.trials_per_cell = 8;
    spec.master_seed = 91;
    spec.query_budget = 512;
    return spec;
}

dist::partial_block sample_block(std::uint64_t index, std::uint64_t cell) {
    dist::partial_block b;
    b.index = index;
    b.cell = cell;
    b.partial.trials = 8;
    b.partial.hijacks = 3;
    b.partial.detections = 5;
    b.partial.canary_detections = 4;
    b.partial.other_crashes = 1;
    b.partial.queries.add(17.0);
    b.partial.queries.add(0.125);  // exactly representable and not round
    b.partial.queries_to_compromise.add(3.0);
    b.partial.leaked_bytes_valid.add(7.0);
    return b;
}

obs::round_summary sample_summary(std::uint64_t round) {
    obs::round_summary s;
    s.round = round;
    s.blocks = 4;
    s.trials = 32;
    s.cumulative_trials = 32 * round;
    s.max_halfwidth = 0.123456789;  // exercises the %.6f wire rounding
    s.widest_cell = "nginx_m/SSP/leak_replay";
    s.wall_seconds = 1.5;
    s.shards = {{0, 0.75, 0.5, 0.25, {}}, {1, 0.8, 0.6, 0.2, {}}};
    s.retries = 2;
    s.requeued_blocks = 3;
    s.timeouts = 1;
    s.resumed = true;
    return s;
}

// A summary as the store keeps it: round-tripped through the wire
// formatting once (the writer stores the log-decoded form).
obs::round_summary wire_decoded(const obs::round_summary& s) {
    return store::round_summary_from_json(
        util::parse_json(obs::round_summary_json(s)));
}

TEST(store_format, log_line_round_trips_every_entry_kind) {
    const auto blocks_entry = store::log_entry::make_blocks(
        7, 3, std::vector<dist::partial_block>{sample_block(1, 0),
                                               sample_block(2, 1)});
    const auto round_entry = store::log_entry::make_round(8, sample_summary(3));
    const auto metrics_entry =
        store::log_entry::make_metrics(9, "{\"vm.steps\": 12}");
    const auto complete_entry = store::log_entry::make_complete(10, 3, 0xabcd);

    for (const auto* entry :
         {&blocks_entry, &round_entry, &metrics_entry, &complete_entry}) {
        const auto line = store::encode_log_line(*entry);
        ASSERT_FALSE(line.empty());
        ASSERT_EQ(line.back(), '\n');
        const auto decoded = store::decode_log_line(
            "test.log", 1, std::string_view{line}.substr(0, line.size() - 1));
        EXPECT_EQ(decoded.kind, entry->kind);
        EXPECT_EQ(decoded.seq, entry->seq);
    }

    // Blocks round-trip hexfloat-exact.
    const auto line = store::encode_log_line(blocks_entry);
    const auto decoded = store::decode_log_line(
        "test.log", 1, std::string_view{line}.substr(0, line.size() - 1));
    ASSERT_EQ(decoded.blocks.size(), 2u);
    EXPECT_EQ(decoded.round, 3u);
    EXPECT_EQ(decoded.blocks[0].index, 1u);
    EXPECT_EQ(decoded.blocks[0].partial.queries.save().mean,
              blocks_entry.blocks[0].partial.queries.save().mean);
    EXPECT_EQ(decoded.blocks[0].partial.queries.save().m2,
              blocks_entry.blocks[0].partial.queries.save().m2);

    // Metrics documents are preserved verbatim.
    const auto mline = store::encode_log_line(metrics_entry);
    const auto mdec = store::decode_log_line(
        "test.log", 1, std::string_view{mline}.substr(0, mline.size() - 1));
    EXPECT_EQ(mdec.metrics, "{\"vm.steps\": 12}");

    // Completion carries the report hash.
    const auto cline = store::encode_log_line(complete_entry);
    const auto cdec = store::decode_log_line(
        "test.log", 1, std::string_view{cline}.substr(0, cline.size() - 1));
    EXPECT_EQ(cdec.done.rounds, 3u);
    EXPECT_EQ(cdec.done.report_fnv, 0xabcdu);
}

TEST(store_format, corrupt_log_line_fails_with_position) {
    const auto entry = store::log_entry::make_complete(1, 2, 3);
    auto line = store::encode_log_line(entry);
    line.pop_back();  // strip newline for decode
    // Flip one body byte: the armor hash must catch it.
    auto tampered = line;
    tampered[10] = tampered[10] == '1' ? '2' : '1';
    try {
        (void)store::decode_log_line("ingest.log", 42, tampered);
        FAIL() << "expected an integrity failure";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("ingest.log"), std::string::npos) << what;
        EXPECT_NE(what.find("42"), std::string::npos) << what;
    }
}

TEST(store_format, round_summary_survives_wire_round_trip) {
    const auto original = sample_summary(5);
    const auto decoded = wire_decoded(original);
    EXPECT_EQ(decoded.round, original.round);
    EXPECT_EQ(decoded.blocks, original.blocks);
    EXPECT_EQ(decoded.trials, original.trials);
    EXPECT_EQ(decoded.cumulative_trials, original.cumulative_trials);
    EXPECT_EQ(decoded.widest_cell, original.widest_cell);
    ASSERT_EQ(decoded.shards.size(), 2u);
    EXPECT_EQ(decoded.shards[1].shard, 1u);
    EXPECT_EQ(decoded.retries, original.retries);
    EXPECT_EQ(decoded.requeued_blocks, original.requeued_blocks);
    EXPECT_EQ(decoded.timeouts, original.timeouts);
    EXPECT_TRUE(decoded.resumed);
    // A second trip is a fixed point: the stored form re-encodes to the
    // identical line (segment rebuild determinism rides on this).
    EXPECT_EQ(obs::round_summary_json(decoded),
              obs::round_summary_json(wire_decoded(decoded)));
}

TEST(store_format, segment_encoding_is_a_pure_function_of_rows) {
    std::vector<store::block_row> blocks;
    blocks.push_back({1, 1, sample_block(0, 0)});
    blocks.push_back({1, 1, sample_block(1, 1)});
    blocks.push_back({3, 2, sample_block(2, 1)});
    std::vector<store::round_row> rounds;
    rounds.push_back({2, wire_decoded(sample_summary(1))});
    rounds.push_back({4, wire_decoded(sample_summary(2))});

    const auto bytes = store::encode_segment(blocks, rounds);
    EXPECT_EQ(bytes, store::encode_segment(blocks, rounds));

    std::vector<store::block_row> decoded_blocks;
    std::vector<store::round_row> decoded_rounds;
    store::decode_segment("seg.json", bytes, decoded_blocks, decoded_rounds);
    ASSERT_EQ(decoded_blocks.size(), blocks.size());
    ASSERT_EQ(decoded_rounds.size(), rounds.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        EXPECT_EQ(decoded_blocks[i].seq, blocks[i].seq);
        EXPECT_EQ(decoded_blocks[i].round, blocks[i].round);
        EXPECT_EQ(decoded_blocks[i].block.index, blocks[i].block.index);
        EXPECT_EQ(decoded_blocks[i].block.partial.queries.save().m2,
                  blocks[i].block.partial.queries.save().m2);
    }
    // Decode → re-encode reproduces the bytes exactly.
    EXPECT_EQ(store::encode_segment(decoded_blocks, decoded_rounds), bytes);
    EXPECT_EQ(decoded_rounds[0].summary.shards.size(), 2u);

    EXPECT_EQ(store::segment_file_name(1), "seg-000000000001.json");
    EXPECT_EQ(store::segment_file_name(123456), "seg-000000123456.json");
}

TEST(store_query, dedup_keeps_lowest_seq_per_block_index) {
    store::store_data data;
    data.meta.spec = small_spec();
    data.blocks.push_back({5, 2, sample_block(0, 0)});
    data.blocks.push_back({1, 1, sample_block(0, 0)});  // earlier delivery
    data.blocks.push_back({2, 1, sample_block(1, 1)});
    const auto rows = store::dedup_blocks(data);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].block.index, 0u);
    EXPECT_EQ(rows[0].seq, 1u);  // lowest seq won
    EXPECT_EQ(rows[1].block.index, 1u);
}

TEST(store_query, filters_parse_names_and_reject_unknowns) {
    store::query_filter filter;
    store::add_scheme(filter, "SSP");
    store::add_attack(filter, "leak_replay");
    store::add_target(filter, "nginx_m");
    EXPECT_EQ(filter.schemes.size(), 1u);
    EXPECT_THROW(store::add_scheme(filter, "definitely-not-a-scheme"),
                 std::invalid_argument);
    EXPECT_THROW(store::add_attack(filter, "nope"), std::invalid_argument);
    EXPECT_THROW(store::add_target(filter, "nope"), std::invalid_argument);
}

// A real end-to-end store for the aggregate tests: the in-process engine
// report is the truth the store-computed aggregate must match.
struct stored_campaign {
    std::string dir;
    campaign::campaign_report report;
    store::store_data data;
};

stored_campaign make_store(const campaign::campaign_spec& spec,
                           const char* tag) {
    stored_campaign out;
    out.dir = fresh_dir(tag);
    campaign::engine engine{spec};
    out.report = engine.run();
    auto writer = store::store_writer::open(out.dir, spec, false);
    // Feed the store the same per-block partials a shard worker would
    // hand the orchestrator: run_blocks over the canonical block list
    // (victims are cached from the run() above).
    const auto canonical = campaign::blocks_for(spec);
    const auto partials = engine.run_blocks(canonical);
    std::vector<dist::partial_block> blocks;
    for (std::size_t i = 0; i < canonical.size(); ++i) {
        dist::partial_block b;
        b.index = canonical[i].index;
        b.cell = canonical[i].cell;
        b.partial = partials[i];
        blocks.push_back(b);
    }
    writer.ingest_blocks(0, blocks);
    obs::round_summary s;
    s.round = 0;
    s.blocks = canonical.size();
    s.trials = out.report.total_trials();
    s.cumulative_trials = s.trials;
    writer.ingest_round(s);
    writer.finalize(out.report, "");
    out.data = store::load_store(out.dir);
    return out;
}

TEST(store_query, aggregate_matches_campaign_report) {
    const auto spec = small_spec();
    const auto sc = make_store(spec, "agg");
    const auto cells = store::aggregate_cells(sc.data, {});
    ASSERT_EQ(cells.size(), sc.report.cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& got = cells[i].report;
        const auto& want = sc.report.cells[i];
        EXPECT_EQ(got.trials, want.trials);
        EXPECT_EQ(got.hijacks, want.hijacks);
        EXPECT_EQ(got.detections, want.detections);
        EXPECT_EQ(got.detection_rate, want.detection_rate);
        EXPECT_EQ(got.detection_ci.lo, want.detection_ci.lo);
        EXPECT_EQ(got.detection_ci.hi, want.detection_ci.hi);
        EXPECT_EQ(got.hijack_ci.lo, want.hijack_ci.lo);
        EXPECT_EQ(got.hijack_ci.hi, want.hijack_ci.hi);
    }
    EXPECT_EQ(store::reconstruct_report(sc.data).to_json(),
              sc.report.to_json());

    // Filters cut the aggregate down without touching the numbers.
    store::query_filter only_ssp;
    store::add_scheme(only_ssp, "SSP");
    const auto filtered = store::aggregate_cells(sc.data, only_ssp);
    ASSERT_GT(filtered.size(), 0u);
    ASSERT_LT(filtered.size(), cells.size());
    for (const auto& c : filtered)
        EXPECT_EQ(c.id.scheme, core::scheme_kind::ssp);

    // Renderers run over the same aggregates.
    EXPECT_NE(store::aggregate_table(cells).find("result store aggregate"),
              std::string::npos);
    const auto json = store::aggregate_json(sc.data, cells);
    EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
    (void)util::parse_json(json);  // must be well-formed

    // Cross-campaign join of the store with itself: every cell present in
    // both columns with identical numbers.
    const store::store_data stores[] = {sc.data, sc.data};
    const std::string names[] = {"a", "b"};
    const auto table = store::comparison_table(stores, names, {});
    EXPECT_NE(table.find("cross-campaign comparison"), std::string::npos);
    EXPECT_NE(table.find("a detection"), std::string::npos);
    EXPECT_NE(table.find("b detection"), std::string::npos);
}

TEST(store_query, reconstruct_rejects_foreign_blocks) {
    const auto spec = small_spec();
    const auto sc = make_store(spec, "foreign");
    auto data = sc.data;
    ASSERT_FALSE(data.blocks.empty());
    data.blocks[0].block.partial.trials += 1;  // no longer canonical
    EXPECT_THROW((void)store::reconstruct_report(data), std::runtime_error);
    auto data2 = sc.data;
    data2.blocks[0].block.index = 1u << 20;  // outside the block space
    EXPECT_THROW((void)store::reconstruct_report(data2), std::runtime_error);
}

}  // namespace
}  // namespace pssp
