// Deterministic fault-injection plans for campaign workers.
//
// The chaos harness is how the fault-tolerance layer is tested without
// real flaky hardware: the orchestrator's environment carries a *fault
// plan* (PSSP_CAMPAIGN_FAULT_PLAN), every worker process parses it at
// startup, and a worker whose (shard, round, attempt) coordinate matches
// a rule executes that rule's fault instead of (or around) its real work.
// Because the coordinate is fully determined by the campaign — the
// allocator's round schedule is a pure function of (spec, master_seed)
// and the orchestrator numbers attempts deterministically — a chaos run
// replays *exactly*: same faults, same retries, same recovered report.
//
// Plan grammar (comma-separated rules; whitespace-free):
//
//   plan    := rule ("," rule)*
//   rule    := fault [":" shard [":" round [":" attempt]]]
//   fault   := "crash" | "crash-late" | "hang" | "trunc" | "corrupt"
//            | "wrong-block" | "slow=<millis>"
//            | "net-die" | "net-drop" | "net-garble"
//            | "net-delay=<millis>" | "net-partition=<millis>"
//            | "net-stall-hb"
//   shard   := integer | "*"          (default "*": any shard)
//   round   := integer | "*"          (default "*": any round; fixed
//                                      allocation runs are round 0)
//   attempt := integer | "*"          (default 1: first attempt only, so
//                                      the retry heals; "*" = every
//                                      attempt, for exhaustion tests)
//
// Process faults, at the point in the compute worker's life where they
// strike (local pipe transport AND the compute child a network node
// forks — the same fault plan behaves identically over both transports):
//
//   crash        exit(3) at startup, before reading stdin
//   crash-late   exit(4) after computing the partial, before emitting it
//   hang         block forever at startup (the supervisor's deadline
//                SIGKILLs it)
//   trunc        emit only the first half of the partial JSON, exit 0
//   corrupt      emit a partial whose spec digest is flipped — parses
//                fine, fails validation
//   wrong-block  emit a partial whose block indices are shifted by one —
//                covers blocks the manifest never assigned
//   slow=N       sleep N milliseconds at startup, then run normally
//                (exercises the deadline without tripping it)
//
// Network faults, executed by the *node* daemon when a lease with a
// matching coordinate arrives (they never reach the compute child):
//
//   net-die          exit the whole node process — a worker permanently
//                    vanishing mid-round; the coordinator requeues its
//                    lease on the survivors
//   net-drop         close the TCP connection on lease receipt, then
//                    reconnect and re-register — the requeued lease
//                    arrives as attempt 2 and heals
//   net-garble       compute normally, then send the result frame with a
//                    corrupted integrity hash — the coordinator detects
//                    the garble, drops the connection, requeues
//   net-delay=N      compute normally, delay the result by N milliseconds
//                    (exercises the lease deadline; expiry requeues)
//   net-partition=N  go completely silent — no heartbeats, no reads — for
//                    N milliseconds; the coordinator evicts the worker on
//                    heartbeat timeout and requeues, the node reconnects
//                    after the partition lifts
//   net-stall-hb     stop sending heartbeats (while still reading) until
//                    the coordinator evicts this worker; then reconnect
//
// First matching rule wins. A malformed plan throws from parse with the
// 1-based entry index and the offending token (the worker exits loudly) —
// a typo'd chaos run must never pass as clean.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pssp::dist {

enum class fault_kind : std::uint8_t {
    none,
    crash,
    crash_late,
    hang,
    trunc,
    corrupt,
    wrong_block,
    slow,
    net_die,
    net_drop,
    net_garble,
    net_delay,
    net_partition,
    net_stall_hb,
};

[[nodiscard]] const char* to_string(fault_kind kind) noexcept;

// Network faults are executed by the node daemon's transport loop; every
// other kind belongs to the compute worker process.
[[nodiscard]] bool is_net_fault(fault_kind kind) noexcept;

struct fault_rule {
    fault_kind kind = fault_kind::none;
    // Match coordinates; any_* true means wildcard.
    bool any_shard = true;
    bool any_round = true;
    bool any_attempt = false;
    std::uint64_t shard = 0;
    std::uint64_t round = 0;
    std::uint64_t attempt = 1;
    std::uint64_t param = 0;  // slow/net-delay/net-partition: milliseconds
};

struct fault_plan {
    std::vector<fault_rule> rules;

    [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

// Parses the plan grammar above. Throws std::invalid_argument naming the
// 1-based entry index and the offending token on any malformed rule —
// including an empty entry ("crash,,hang") in a non-empty plan. An
// entirely empty plan text parses to an empty plan.
[[nodiscard]] fault_plan parse_fault_plan(std::string_view text);

// The first rule matching (shard, round, attempt), or a kind-none rule.
[[nodiscard]] fault_rule decide_fault(const fault_plan& plan,
                                      std::uint64_t shard, std::uint64_t round,
                                      std::uint64_t attempt) noexcept;

// decide_fault restricted to one fault family: the compute worker asks
// for process faults (net rules must not confuse a pipe worker), the node
// daemon asks for network faults (and leaves process faults to the
// compute child it forks).
[[nodiscard]] fault_rule decide_process_fault(const fault_plan& plan,
                                              std::uint64_t shard,
                                              std::uint64_t round,
                                              std::uint64_t attempt) noexcept;
[[nodiscard]] fault_rule decide_net_fault(const fault_plan& plan,
                                          std::uint64_t shard,
                                          std::uint64_t round,
                                          std::uint64_t attempt) noexcept;

// Environment variable names shared by the orchestrator (which sets the
// coordinates per spawned worker) and the worker (which reads them).
inline constexpr const char* fault_plan_env = "PSSP_CAMPAIGN_FAULT_PLAN";
inline constexpr const char* fault_round_env = "PSSP_CAMPAIGN_ROUND";
inline constexpr const char* fault_attempt_env = "PSSP_CAMPAIGN_ATTEMPT";

}  // namespace pssp::dist
