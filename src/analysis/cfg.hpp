// Control-flow-graph recovery over the decoded-op stream.
//
// program::finalize() already resolved every direct transfer (jmp/jcc
// targets, call targets and return continuations) into `flow`, so block
// discovery is a pure partitioning problem: leaders are symbol entries,
// resolved flow targets, call return continuations, and the instruction
// after any terminator; terminators are the branches, call, and the
// opcodes whose successors the stream cannot name (`ret`, whose target
// comes off the — possibly attacker-controlled — simulated stack, plus
// hlt/trap_abort and unresolved jumps).
//
// Fused superinstruction pairs never move a block wall. Fusion only swaps
// the handler id at the pair's first position; position i+1 keeps its
// standalone lowering, so a jump into the middle of a pair executes
// exactly as the one-instruction stepper would (vm/dispatch.hpp). The
// recovered graph therefore works at instruction granularity and merely
// *annotates* where pairs sit relative to walls (`fused_tail` /
// `fused_entry`) — the block-selection metadata a baseline JIT needs to
// decide where a superinstruction may be compiled as one unit.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/program.hpp"

namespace pssp::analysis {

enum class edge_kind : std::uint8_t {
    fallthrough,   // straight-line into the next leader
    branch_taken,  // jcc/jmp resolved target
    call_target,   // call into a VM function
    call_return,   // call's return continuation (the instruction after it)
};

struct cfg_edge {
    std::uint32_t to = 0;  // successor block id
    edge_kind kind = edge_kind::fallthrough;
};

struct basic_block {
    std::uint32_t first = 0;  // index of the leader instruction
    std::uint32_t count = 0;  // instructions in the block
    std::vector<cfg_edge> succs;
    std::vector<std::uint32_t> preds;  // predecessor block ids
    // ret / hlt / trap_abort / unresolved target: the stream cannot name
    // the successors, so the graph claims nothing about them.
    bool unknown_successors = false;
    // The last instruction carries a fused handler whose second half is the
    // next block's leader — the pair executes across this wall when entered
    // at its first half.
    bool fused_tail = false;
    // The leader is the second half of a fused pair: entering here (a jump
    // into the pair middle) runs the standalone record kept at this slot.
    bool fused_entry = false;

    [[nodiscard]] std::uint32_t last() const noexcept { return first + count - 1; }
};

class cfg {
  public:
    // Recovers the graph from a finalized program (flow and code present).
    [[nodiscard]] static cfg recover(const vm::program& prog);

    [[nodiscard]] const std::vector<basic_block>& blocks() const noexcept {
        return blocks_;
    }

    // Block containing instruction `index`; vm::no_id when out of range.
    [[nodiscard]] std::uint32_t block_of(std::uint32_t index) const noexcept {
        return index < block_of_.size() ? block_of_[index] : vm::no_id;
    }

    // True when the dynamic transfer `from` -> `to` (two executed
    // instruction indices, consecutive in a trace) is consistent with the
    // recovered graph: a straight-line step inside a block, an edge between
    // blocks, or any valid target of an instruction whose successors are
    // unknown (ret / indirect flow). The differential oracle's random
    // programs assert this for every executed edge.
    [[nodiscard]] bool covers_transfer(std::uint32_t from, std::uint32_t to) const;

    // Ids of every block whose instructions lie within [first, end) — the
    // per-function view the canary checker walks.
    [[nodiscard]] std::vector<std::uint32_t> blocks_in_range(std::uint32_t first,
                                                             std::uint32_t end) const;

  private:
    std::vector<basic_block> blocks_;
    std::vector<std::uint32_t> block_of_;  // instruction index -> block id
};

}  // namespace pssp::analysis
