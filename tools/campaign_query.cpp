// Live query CLI over a campaign result store (src/store/).
//
// Reads a store directory written by `tools_campaign_shard --store DIR`
// — while the campaign is still running or after it finished — and
// answers from the stored integer tallies:
//
//   --table        per-cell aggregate (rates + Wilson CIs), filterable
//   --json         the same aggregate as deterministic JSON
//   --report       reconstruct the full campaign report from the store
//                  alone; on a complete store this is byte-identical to
//                  the report the campaign wrote (CI `cmp`s the two)
//   --verify       integrity pass: segments re-hashed (done on every
//                  load), reconstructed report checked against the FNV
//                  the completion entry recorded
//   --follow       tail the ingest log live, one line per entry, until
//                  the campaign completes
//   --html         self-contained dashboard export
//   --compare DIR  cross-campaign join: cells aligned by
//                  target/scheme/attack across stores
//   --metrics      the final obs registry snapshot stored at finalize

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "store/dashboard.hpp"
#include "store/query.hpp"
#include "util/bytes.hpp"

namespace {

using namespace pssp;

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s DIR [--table] [--json] [--report [PATH|-]]\n"
        "          [--verify] [--follow] [--html PATH|-] [--metrics]\n"
        "          [--compare DIR]... [--scheme S]... [--attack A]...\n"
        "          [--target T]... [--min-round N] [--max-round N]\n"
        "          [--no-repair]\n"
        "  DIR            result store written by campaign_shard --store\n"
        "  --table        per-cell aggregate table (default action)\n"
        "  --json         per-cell aggregate as deterministic JSON\n"
        "  --report [P]   reconstruct the campaign report JSON from the\n"
        "                 store ('-' or omitted = stdout); byte-identical\n"
        "                 to the campaign's own --json output once the\n"
        "                 store is complete\n"
        "  --verify       re-hash segments, rebuild anything torn, check\n"
        "                 the reconstructed report against the stored\n"
        "                 completion hash; exit 0 only if all hold\n"
        "  --follow       tail the ingest log live until completion\n"
        "  --html PATH    dashboard export ('-' = stdout)\n"
        "  --metrics      print the stored obs registry snapshot\n"
        "  --compare DIR  join additional stores into a head-to-head\n"
        "                 comparison table (repeatable)\n"
        "  --scheme S     filter to scheme S (repeatable; same for\n"
        "                 --attack/--target)\n"
        "  --min-round N / --max-round N  round provenance window\n"
        "  --no-repair    do not write repaired segments back to disk\n",
        argv0);
}

bool write_text(const char* path, const std::string& text) {
    if (!std::strcmp(path, "-")) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::ofstream out{path, std::ios::binary};
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return false;
    }
    out << text;
    return true;
}

void print_entry(const store::log_entry& entry) {
    switch (entry.kind) {
        case store::entry_kind::blocks:
            std::printf("seq %llu: round %llu, %zu block(s)\n",
                        static_cast<unsigned long long>(entry.seq),
                        static_cast<unsigned long long>(entry.round),
                        entry.blocks.size());
            break;
        case store::entry_kind::round: {
            const auto& s = entry.summary;
            std::printf(
                "seq %llu: round %llu summary — %llu blocks, %llu trials "
                "(%llu cumulative), widest CI half-width %.4f (%s)%s\n",
                static_cast<unsigned long long>(entry.seq),
                static_cast<unsigned long long>(s.round),
                static_cast<unsigned long long>(s.blocks),
                static_cast<unsigned long long>(s.trials),
                static_cast<unsigned long long>(s.cumulative_trials),
                s.max_halfwidth, s.widest_cell.c_str(),
                s.resumed ? " [resumed]" : "");
            break;
        }
        case store::entry_kind::metrics:
            std::printf("seq %llu: metrics snapshot (%zu bytes)\n",
                        static_cast<unsigned long long>(entry.seq),
                        entry.metrics.size());
            break;
        case store::entry_kind::complete:
            std::printf("seq %llu: campaign complete — %llu round(s), "
                        "report fnv %016llx\n",
                        static_cast<unsigned long long>(entry.seq),
                        static_cast<unsigned long long>(entry.done.rounds),
                        static_cast<unsigned long long>(entry.done.report_fnv));
            break;
    }
    std::fflush(stdout);
}

int follow(const std::string& dir) {
    store::store_tailer tailer{dir};
    for (;;) {
        const auto entries = tailer.poll();
        for (const auto& e : entries) print_entry(e);
        if (tailer.complete()) return 0;
        ::usleep(100 * 1000);
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::string dir;
    std::vector<std::string> compare_dirs;
    store::query_filter filter;
    bool do_table = false, do_json = false, do_verify = false;
    bool do_follow = false, do_metrics = false;
    const char* report_path = nullptr;
    const char* html_path = nullptr;
    store::load_options load_opts;

    for (int i = 1; i < argc; ++i) {
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (!std::strcmp(argv[i], "--table")) {
                do_table = true;
            } else if (!std::strcmp(argv[i], "--json")) {
                do_json = true;
            } else if (!std::strcmp(argv[i], "--report")) {
                // Optional value: a following token that is not a flag
                // (a bare "-" means stdout, not a flag).
                report_path = (i + 1 < argc && (argv[i + 1][0] != '-' ||
                                                !std::strcmp(argv[i + 1], "-")))
                                  ? argv[++i]
                                  : "-";
            } else if (!std::strcmp(argv[i], "--verify")) {
                do_verify = true;
            } else if (!std::strcmp(argv[i], "--follow")) {
                do_follow = true;
            } else if (!std::strcmp(argv[i], "--metrics")) {
                do_metrics = true;
            } else if (!std::strcmp(argv[i], "--html")) {
                html_path = next_value("--html");
            } else if (!std::strcmp(argv[i], "--compare")) {
                compare_dirs.push_back(next_value("--compare"));
            } else if (!std::strcmp(argv[i], "--scheme")) {
                store::add_scheme(filter, next_value("--scheme"));
            } else if (!std::strcmp(argv[i], "--attack")) {
                store::add_attack(filter, next_value("--attack"));
            } else if (!std::strcmp(argv[i], "--target")) {
                store::add_target(filter, next_value("--target"));
            } else if (!std::strcmp(argv[i], "--min-round")) {
                filter.min_round =
                    std::strtoull(next_value("--min-round"), nullptr, 10);
            } else if (!std::strcmp(argv[i], "--max-round")) {
                filter.max_round =
                    std::strtoull(next_value("--max-round"), nullptr, 10);
            } else if (!std::strcmp(argv[i], "--no-repair")) {
                load_opts.repair = false;
            } else if (argv[i][0] == '-') {
                usage(argv[0]);
                return 2;
            } else if (dir.empty()) {
                dir = argv[i];
            } else {
                std::fprintf(stderr, "unexpected argument %s\n", argv[i]);
                usage(argv[0]);
                return 2;
            }
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }
    if (dir.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (!do_table && !do_json && !do_verify && !do_follow && !do_metrics &&
        report_path == nullptr && html_path == nullptr && compare_dirs.empty())
        do_table = true;

    try {
        if (do_follow) return follow(dir);

        const auto data = store::load_store(dir, load_opts);
        if (data.repaired_segments > 0)
            std::fprintf(stderr,
                         "store %s: rebuilt %llu torn segment(s) from the "
                         "ingest log%s\n",
                         dir.c_str(),
                         static_cast<unsigned long long>(
                             data.repaired_segments),
                         load_opts.repair ? "" : " (read-only, not rewritten)");
        if (data.dropped_torn_tail)
            std::fprintf(stderr,
                         "store %s: dropped a torn final log line (killed "
                         "mid-append)\n",
                         dir.c_str());

        int rc = 0;
        if (do_verify) {
            const auto report = store::reconstruct_report(data);
            const auto fnv = util::fnv1a64(report.to_json());
            if (!data.complete) {
                std::fprintf(stderr,
                             "store %s: INCOMPLETE — campaign still running "
                             "or killed before finalize\n",
                             dir.c_str());
                rc = 1;
            } else if (fnv != data.done.report_fnv) {
                std::fprintf(
                    stderr,
                    "store %s: FAIL — reconstructed report hashes to "
                    "%016llx, completion entry recorded %016llx\n",
                    dir.c_str(), static_cast<unsigned long long>(fnv),
                    static_cast<unsigned long long>(data.done.report_fnv));
                rc = 1;
            } else {
                std::fprintf(stderr,
                             "store %s: OK — %zu block row(s), %zu round(s), "
                             "reconstructed report matches completion hash "
                             "%016llx\n",
                             dir.c_str(), data.blocks.size(),
                             data.rounds.size(),
                             static_cast<unsigned long long>(fnv));
            }
        }
        if (!compare_dirs.empty()) {
            std::vector<store::store_data> stores;
            std::vector<std::string> names;
            stores.push_back(data);
            names.push_back(dir);
            for (const auto& d : compare_dirs) {
                stores.push_back(store::load_store(d, load_opts));
                names.push_back(d);
            }
            std::printf("%s\n",
                        store::comparison_table(stores, names, filter).c_str());
        }
        if (do_table) {
            const auto cells = store::aggregate_cells(data, filter);
            std::printf("%s\n", store::aggregate_table(cells).c_str());
        }
        if (do_json) {
            const auto cells = store::aggregate_cells(data, filter);
            std::printf("%s\n", store::aggregate_json(data, cells).c_str());
        }
        if (do_metrics) {
            if (data.metrics.empty()) {
                std::fprintf(stderr,
                             "store %s holds no metrics snapshot (campaign "
                             "not finalized yet)\n",
                             dir.c_str());
                rc = 1;
            } else {
                std::printf("%s\n", data.metrics.c_str());
            }
        }
        if (report_path != nullptr) {
            const auto report = store::reconstruct_report(data);
            if (!write_text(report_path, report.to_json() + "\n")) return 1;
        }
        if (html_path != nullptr) {
            if (!write_text(html_path, store::render_dashboard(data))) return 1;
            if (std::strcmp(html_path, "-"))
                std::fprintf(stderr, "dashboard written to %s\n", html_path);
        }
        return rc;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
