// Uniform strategy interface over the three attack classes — the seam the
// campaign engine drives.
//
// The concrete attacks (brute_force, byte_by_byte, leak_replay) each have
// their own config/result shapes and constructors; a Monte-Carlo campaign
// needs to launch any of them against any oracle with nothing but a
// per-trial seed and read back one comparable outcome record. A strategy
// is stateless and const: all per-trial state (the oracle, the seed, the
// query budget) arrives through attack_context, so one strategy instance
// can serve thousands of concurrent trials.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "proc/fork_server.hpp"

namespace pssp::attack {

enum class attack_kind : std::uint8_t {
    brute_force,   // whole-canary guessing (entropy-reduced harness)
    byte_by_byte,  // BROP-style positional guessing through the crash oracle
    leak_replay,   // info-leak one worker, replay against the next
};

[[nodiscard]] std::string to_string(attack_kind kind);

// Inverse of to_string; throws std::invalid_argument on an unknown name.
[[nodiscard]] attack_kind attack_kind_from_string(const std::string& name);

// All kinds, in presentation order.
[[nodiscard]] const std::vector<attack_kind>& all_attack_kinds();

// Everything one trial needs. The oracle is a freshly booted fork server
// (its master seed is the trial's *server* stream); `seed` is the trial's
// *attacker* stream — the two are split independently by the campaign
// engine so Theorem-1-style independence claims stay testable.
struct attack_context {
    proc::fork_server& oracle;
    core::scheme_kind scheme = core::scheme_kind::ssp;
    std::uint64_t prefix_bytes = 64;  // buffer start -> canary distance
    unsigned canary_bytes = 8;        // scheme's stack canary area width
    std::uint64_t ret_target = 0;     // the win gadget
    std::uint64_t saved_rbp = 0;      // plausible frame-pointer value
    std::uint64_t seed = 0;           // attacker PRNG stream
    std::uint64_t query_budget = 2048;  // max oracle queries this trial
    // Brute force's entropy-reduction harness (Section III-C-1): the top
    // (64 - unknown_bits) bits of the true canary, leaked to the attacker.
    std::uint64_t true_canary_hint = 0;
    unsigned unknown_bits = 12;
    std::uint32_t dcr_offset = 0;
};

// One comparable outcome record per trial, whatever the strategy.
struct attack_outcome {
    bool hijacked = false;           // control reached the win gadget
    bool detected = false;           // !hijacked and >= 1 canary-check trap
    std::uint64_t oracle_queries = 0;
    std::uint64_t canary_detections = 0;  // __stack_chk_fail worker deaths
    std::uint64_t other_crashes = 0;      // segv / wild control transfer / fuel
    unsigned leaked_bytes_valid = 0;      // leak_replay: usable leak bytes
};

class attack_strategy {
  public:
    virtual ~attack_strategy() = default;

    [[nodiscard]] virtual attack_kind kind() const noexcept = 0;
    [[nodiscard]] virtual std::string name() const = 0;

    // Runs one full attack trial against ctx.oracle. Must derive all of its
    // nondeterminism from ctx.seed.
    [[nodiscard]] virtual attack_outcome execute(const attack_context& ctx) const = 0;
};

[[nodiscard]] std::unique_ptr<attack_strategy> make_strategy(attack_kind kind);

}  // namespace pssp::attack
