// Multi-process campaign fan-out.
//
// Fixed allocation: run_sharded() fork/execs one `tools_campaign_worker`
// per shard, hands each its spec over stdin (wire spec JSON plus
// --shard K --shards N on argv), collects every worker's partial report
// from its stdout pipe, and reduces via wire::merge_partials — which
// bottoms out in the same campaign::assemble_report the in-process engine
// uses, so the merged report is byte-identical to engine{spec}.run() at
// every shard count.
//
// Adaptive allocation (spec.adaptive): the orchestrator drives
// campaign::adaptive_allocator itself. Each round it splits the round's
// block list round-robin by position across the shards, fork/execs one
// `--round` worker per non-empty slice with an explicit block manifest
// (wire round-job JSON) on stdin, validates exactly-once coverage of the
// round, records the merged partials, and asks the allocator for the next
// round. Decisions are pure functions of merged partials, so the final
// report is byte-identical to the in-process adaptive engine at every
// shard count — the identity oracle extends to adaptive runs unchanged.
//
// Failure model: supervised, then loud. Every worker runs under
// dist::supervise_jobs — a worker that crashes, times out, or emits a bad
// or wrong-blocks partial has its block manifest requeued with bounded
// retries and exponential backoff (options.faults), with a postmortem
// dumped per failed attempt. Requeueing cannot move a report byte:
// block partials are pure functions of (master_seed, block) and
// wire::merge_partials enforces exactly-once coverage, so at-least-once
// execution + dedup-by-block preserves identity. Only when a job exhausts
// its retry budget does the run fail, with a std::runtime_error naming
// every exhausted shard, its round, its last failure, its argv, and its
// block manifest — trials are never silently dropped.
//
// Checkpoint/resume (options.checkpoint_dir): validated block partials
// are persisted incrementally through dist::checkpoint_log — per shard
// job for fixed runs, per recorded round for adaptive runs — so a run
// whose *orchestrator* dies can be resumed (options.resume) and produce a
// byte-identical report while re-running only the missing work.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>

#include "campaign/campaign.hpp"
#include "dist/coordinator.hpp"
#include "dist/supervisor.hpp"
#include "obs/telemetry.hpp"

namespace pssp::dist {

struct sharded_options {
    // Number of worker processes. 1 still goes through fork/exec — that is
    // the point of --shards 1 as a protocol check.
    unsigned shards = 1;
    // Path to the worker binary; empty resolves default_worker_path().
    std::string worker_path;
    // Worker threads per shard; 0 derives resolve_jobs(spec.jobs)/shards
    // (at least 1), so "--jobs 8 --shards 4" runs 2 threads per process.
    unsigned jobs_per_shard = 0;

    // ---- Telemetry side channel ----
    // None of these can move a byte of the merged report
    // (tests/campaign/telemetry_identity_test.cpp pins that); they only
    // record what happened.

    // Run-summary JSONL destination ('-' = stderr): one line per adaptive
    // round, or a single round-0 line for a fixed run, with blocks/trials
    // issued, the widest remaining Wilson half-width, and per-shard
    // wall/user/sys times. Empty = off.
    std::string telemetry_path;
    // In-process observer handed the same per-round summaries the JSONL
    // gets (tools_campaign_shard --progress renders its stderr line from
    // this). Called from the orchestrating thread between rounds.
    std::function<void(const obs::round_summary&)> round_observer;
    // Result-store ingest hook (src/store/): handed exactly the validated
    // block partials the checkpoint log persists — once per accepted round
    // for adaptive runs (blocks reassembled into round order, after the
    // allocator accepted the round and after the checkpoint append), once
    // per successful shard job for fixed runs, and once per replayed
    // round/restored block set on resume. Ingest dedups by block index, so
    // the at-least-once delivery this schedule implies is harmless. Called
    // from the orchestrating thread; a strict side channel — nothing
    // flows back into the merge or the report.
    std::function<void(std::uint64_t round, std::span<const partial_block>)>
        block_ingest;
    // Crash flight recorder: each worker process is pointed at a
    // per-shard flight file via the PSSP_OBS_FLIGHT environment variable
    // and checkpoints its span ring there as it runs. If a worker crashes,
    // exits non-zero, or emits a bad partial, the orchestrator dumps that
    // recording plus the worker's argv, wait status, round number and
    // block manifest to obs-postmortem-<shard>.json (in postmortem_dir)
    // before failing the run loudly. Flight files are removed on success.
    bool flight_recorder = true;
    std::string postmortem_dir;  // empty = current directory

    // ---- Fault tolerance ----
    // Retry/timeout/backoff policy for every supervised worker (see
    // dist/supervisor.hpp). max_attempts = 1 restores the old fail-fast
    // behavior exactly.
    fault_policy faults;
    // Checkpoint directory (dist/checkpoint.hpp). Empty = no
    // checkpointing. With resume = false the directory must not already
    // hold a checkpoint; with resume = true it must, with a matching spec
    // digest, and completed work recorded there is replayed instead of
    // re-run — the resumed report is byte-identical to an uninterrupted
    // one.
    std::string checkpoint_dir;
    bool resume = false;

    // ---- Network transport ----
    // Engaged: rounds execute over a dist::coordinator (TCP leases to
    // tools_campaign_node workers) instead of local fork/exec pipes. The
    // jobs, the classify/requeue loop, the checkpoint log, and the merge
    // are the same code either way, so the report is byte-identical to
    // the local path at any worker count or fault schedule. The
    // fault_policy above governs network retries too.
    std::optional<net_options> net;
};

// The sibling `tools_campaign_worker` of the running executable
// (/proc/self/exe's directory) — orchestrator and workers are built into
// the same binary directory.
[[nodiscard]] std::string default_worker_path();

[[nodiscard]] campaign::campaign_report run_sharded(
    const campaign::campaign_spec& spec, const sharded_options& options = {});

}  // namespace pssp::dist
