#include "dist/wire.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/bytes.hpp"
#include "util/json.hpp"

namespace pssp::dist {

namespace {

const char* owf_name(crypto::owf_kind kind) {
    switch (kind) {
        case crypto::owf_kind::aes128: return "aes128";
        case crypto::owf_kind::sha1: return "sha1";
    }
    throw std::invalid_argument{"owf_name: unknown owf_kind"};
}

crypto::owf_kind owf_from_name(const std::string& name) {
    if (name == "aes128") return crypto::owf_kind::aes128;
    if (name == "sha1") return crypto::owf_kind::sha1;
    throw std::invalid_argument{"wire: unknown owf \"" + name + "\""};
}

util::welford_accumulator parse_welford(const util::json_value& v) {
    util::welford_accumulator::state s;
    s.n = v.at("n").as_u64();
    s.mean = v.at("mean").as_double_exact();
    s.m2 = v.at("m2").as_double_exact();
    s.min = v.at("min").as_double_exact();
    s.max = v.at("max").as_double_exact();
    s.total = v.at("total").as_double_exact();
    return util::welford_accumulator::restore(s);
}

}  // namespace

void append_spec_object(std::string& out, const campaign::campaign_spec& spec) {
    out += "{\"schemes\":[";
    for (std::size_t i = 0; i < spec.schemes.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += core::to_string(spec.schemes[i]);
        out += '"';
    }
    out += "],\"attacks\":[";
    for (std::size_t i = 0; i < spec.attacks.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += attack::to_string(spec.attacks[i]);
        out += '"';
    }
    out += "],\"targets\":[";
    for (std::size_t i = 0; i < spec.targets.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += workload::to_string(spec.targets[i]);
        out += '"';
    }
    out += "],";
    util::append_kv(out, "trials_per_cell", spec.trials_per_cell);
    util::append_kv(out, "master_seed", spec.master_seed);
    util::append_kv(out, "jobs", static_cast<std::uint64_t>(spec.jobs));
    util::append_kv_bool(out, "reuse_masters", spec.reuse_masters);
    util::append_kv(out, "query_budget", spec.query_budget);
    util::append_kv(out, "brute_unknown_bits",
                    static_cast<std::uint64_t>(spec.brute_unknown_bits));
    // Adaptive knobs are outcome-relevant: part of the wire spec AND the
    // digest. The target travels hexfloat-exact — the stop decision
    // compares against it, so a worker must see the identical double.
    util::append_kv_bool(out, "adaptive", spec.adaptive);
    util::append_kv_exact(out, "target_ci_halfwidth", spec.target_ci_halfwidth);
    util::append_kv(out, "round_blocks", spec.round_blocks);
    util::append_kv(out, "min_trials_per_cell", spec.min_trials_per_cell);
    out += "\"scheme_options\":{";
    util::append_kv(out, "owf", std::string{owf_name(spec.scheme_options.owf)});
    util::append_kv_bool(out, "lv_check_after_write",
                         spec.scheme_options.lv_check_after_write);
    util::append_kv(
        out, "dcr_trampoline_cycles",
        static_cast<std::uint64_t>(spec.scheme_options.dcr_trampoline_cycles),
        /*comma=*/false);
    out += "}}";
}

campaign::campaign_spec spec_from_object(const util::json_value& s) {
    campaign::campaign_spec spec;
    spec.schemes.clear();
    for (const auto& v : s.at("schemes").elements())
        spec.schemes.push_back(core::scheme_kind_from_string(v.as_string()));
    spec.attacks.clear();
    for (const auto& v : s.at("attacks").elements())
        spec.attacks.push_back(attack::attack_kind_from_string(v.as_string()));
    spec.targets.clear();
    for (const auto& v : s.at("targets").elements())
        spec.targets.push_back(workload::target_kind_from_string(v.as_string()));
    spec.trials_per_cell = s.at("trials_per_cell").as_u64();
    spec.master_seed = s.at("master_seed").as_u64();
    spec.jobs = static_cast<unsigned>(s.at("jobs").as_u64());
    spec.reuse_masters = s.at("reuse_masters").as_bool();
    spec.query_budget = s.at("query_budget").as_u64();
    spec.brute_unknown_bits =
        static_cast<unsigned>(s.at("brute_unknown_bits").as_u64());
    spec.adaptive = s.at("adaptive").as_bool();
    spec.target_ci_halfwidth = s.at("target_ci_halfwidth").as_double_exact();
    spec.round_blocks = s.at("round_blocks").as_u64();
    spec.min_trials_per_cell = s.at("min_trials_per_cell").as_u64();
    const auto& opts = s.at("scheme_options");
    spec.scheme_options.owf = owf_from_name(opts.at("owf").as_string());
    spec.scheme_options.lv_check_after_write =
        opts.at("lv_check_after_write").as_bool();
    spec.scheme_options.dcr_trampoline_cycles =
        static_cast<std::uint32_t>(opts.at("dcr_trampoline_cycles").as_u64());
    return spec;
}

std::string spec_to_json(const campaign::campaign_spec& spec) {
    std::string out;
    out.reserve(512);
    out += "{\"spec\":";
    append_spec_object(out, spec);
    out += "}";
    return out;
}

campaign::campaign_spec spec_from_json(std::string_view text) {
    const auto doc = util::parse_json(text);
    return spec_from_object(doc.at("spec"));
}

std::string round_job_to_json(const round_job& job) {
    std::string out;
    out.reserve(768 + job.manifest.blocks.size() * 64);
    out += "{\"round_job\":{";
    util::append_kv(out, "version", static_cast<std::uint64_t>(wire_version));
    util::append_kv(out, "round", job.manifest.round);
    util::append_kv(out, "spec_digest", job.manifest.digest);
    out += "\"spec\":";
    append_spec_object(out, job.spec);
    out += ",\"blocks\":[";
    for (std::size_t i = 0; i < job.manifest.blocks.size(); ++i) {
        const auto& b = job.manifest.blocks[i];
        if (i) out += ',';
        out += '{';
        util::append_kv(out, "index", b.index);
        util::append_kv(out, "cell", b.cell);
        util::append_kv(out, "first_trial", b.first_trial);
        util::append_kv(out, "trials", b.trials, /*comma=*/false);
        out += '}';
    }
    out += "]}}";
    return out;
}

round_job round_job_from_json(std::string_view text) {
    const auto doc = util::parse_json(text);
    const auto& j = doc.at("round_job");
    const auto version = j.at("version").as_u64();
    if (version != wire_version)
        throw std::runtime_error{"wire: round job version " +
                                 std::to_string(version) + " != " +
                                 std::to_string(wire_version)};
    round_job job;
    job.manifest.round = j.at("round").as_u64();
    job.manifest.digest = j.at("spec_digest").as_u64();
    job.spec = spec_from_object(j.at("spec"));
    for (const auto& b : j.at("blocks").elements()) {
        campaign::block_ref block;
        block.index = b.at("index").as_u64();
        block.cell = b.at("cell").as_u64();
        block.first_trial = b.at("first_trial").as_u64();
        block.trials = b.at("trials").as_u64();
        job.manifest.blocks.push_back(block);
    }
    return job;
}

std::uint64_t spec_digest(const campaign::campaign_spec& spec) {
    // Canonicalize through the spec JSON with the execution knobs pinned,
    // so the digest is a function of outcome-relevant fields only.
    campaign::campaign_spec canonical = spec;
    canonical.jobs = 1;
    canonical.reuse_masters = true;
    return util::fnv1a64(spec_to_json(canonical));
}

void append_partial_block(std::string& out, const partial_block& b) {
    out += '{';
    util::append_kv(out, "index", b.index);
    util::append_kv(out, "cell", b.cell);
    util::append_kv(out, "trials", b.partial.trials);
    util::append_kv(out, "hijacks", b.partial.hijacks);
    util::append_kv(out, "detections", b.partial.detections);
    util::append_kv(out, "canary_detections", b.partial.canary_detections);
    util::append_kv(out, "other_crashes", b.partial.other_crashes);
    util::append_accumulator_exact(out, "queries", b.partial.queries);
    util::append_accumulator_exact(out, "queries_to_compromise",
                                   b.partial.queries_to_compromise);
    util::append_accumulator_exact(out, "leaked_bytes_valid",
                                   b.partial.leaked_bytes_valid,
                                   /*comma=*/false);
    out += '}';
}

partial_block partial_block_from_json(const util::json_value& b) {
    partial_block block;
    block.index = b.at("index").as_u64();
    block.cell = b.at("cell").as_u64();
    block.partial.trials = b.at("trials").as_u64();
    block.partial.hijacks = b.at("hijacks").as_u64();
    block.partial.detections = b.at("detections").as_u64();
    block.partial.canary_detections = b.at("canary_detections").as_u64();
    block.partial.other_crashes = b.at("other_crashes").as_u64();
    block.partial.queries = parse_welford(b.at("queries"));
    block.partial.queries_to_compromise =
        parse_welford(b.at("queries_to_compromise"));
    block.partial.leaked_bytes_valid = parse_welford(b.at("leaked_bytes_valid"));
    return block;
}

std::string partial_to_json(const partial_report& partial) {
    obs::span sp{"wire.encode", "dist",
                 static_cast<std::int64_t>(partial.blocks.size())};
    std::string out;
    out.reserve(256 + partial.blocks.size() * 512);
    out += "{\"partial\":{";
    util::append_kv(out, "version", static_cast<std::uint64_t>(wire_version));
    util::append_kv(out, "shard", static_cast<std::uint64_t>(partial.shard_index));
    util::append_kv(out, "shards",
                    static_cast<std::uint64_t>(partial.shard_count));
    util::append_kv(out, "round", partial.round);
    util::append_kv(out, "spec_digest", partial.digest);
    out += "\"blocks\":[";
    for (std::size_t i = 0; i < partial.blocks.size(); ++i) {
        if (i) out += ',';
        append_partial_block(out, partial.blocks[i]);
    }
    out += "]}}";
    return out;
}

partial_report partial_from_json(std::string_view text) {
    obs::span sp{"wire.decode", "dist",
                 static_cast<std::int64_t>(text.size())};
    const auto doc = util::parse_json(text);
    const auto& p = doc.at("partial");
    const auto version = p.at("version").as_u64();
    if (version != wire_version)
        throw std::runtime_error{"wire: partial version " +
                                 std::to_string(version) + " != " +
                                 std::to_string(wire_version)};
    partial_report partial;
    partial.shard_index = static_cast<std::uint32_t>(p.at("shard").as_u64());
    partial.shard_count = static_cast<std::uint32_t>(p.at("shards").as_u64());
    partial.round = p.at("round").as_u64();
    partial.digest = p.at("spec_digest").as_u64();
    for (const auto& b : p.at("blocks").elements())
        partial.blocks.push_back(partial_block_from_json(b));
    return partial;
}

std::vector<campaign::cell_partial> collect_block_partials(
    const campaign::campaign_spec& spec,
    std::span<const campaign::block_ref> blocks,
    std::span<const partial_report> partials, std::uint64_t expected_round) {
    const auto digest = spec_digest(spec);
    // Position of each expected block index in `blocks`.
    std::vector<std::size_t> position;
    std::size_t max_index = 0;
    for (const auto& b : blocks) max_index = std::max<std::size_t>(max_index, b.index);
    position.assign(blocks.empty() ? 0 : max_index + 1, SIZE_MAX);
    for (std::size_t i = 0; i < blocks.size(); ++i) position[blocks[i].index] = i;

    std::vector<campaign::cell_partial> collected(blocks.size());
    std::vector<bool> seen(blocks.size(), false);
    for (const auto& partial : partials) {
        if (partial.digest != digest)
            throw std::runtime_error{
                "merge_partials: shard " + std::to_string(partial.shard_index) +
                " ran a different spec (digest mismatch)"};
        if (partial.round != expected_round)
            throw std::runtime_error{
                "merge_partials: shard " + std::to_string(partial.shard_index) +
                " reported round " + std::to_string(partial.round) +
                ", expected " + std::to_string(expected_round)};
        for (const auto& b : partial.blocks) {
            const std::size_t at =
                b.index < position.size() ? position[b.index] : SIZE_MAX;
            if (at == SIZE_MAX)
                throw std::runtime_error{"merge_partials: block " +
                                         std::to_string(b.index) +
                                         " was not assigned"};
            if (seen[at])
                throw std::runtime_error{"merge_partials: block " +
                                         std::to_string(b.index) +
                                         " reported twice"};
            if (b.cell != blocks[at].cell)
                throw std::runtime_error{"merge_partials: block " +
                                         std::to_string(b.index) +
                                         " cell mismatch"};
            if (b.partial.trials != blocks[at].trials)
                throw std::runtime_error{"merge_partials: block " +
                                         std::to_string(b.index) +
                                         " trial count mismatch"};
            seen[at] = true;
            collected[at] = b.partial;
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        if (!seen[i])
            throw std::runtime_error{"merge_partials: block " +
                                     std::to_string(blocks[i].index) +
                                     " missing (shard lost?)"};
    return collected;
}

campaign::campaign_report merge_partials(
    const campaign::campaign_spec& spec,
    std::span<const partial_report> partials) {
    const auto blocks = campaign::blocks_for(spec);
    const auto collected =
        collect_block_partials(spec, blocks, partials, /*expected_round=*/0);
    return campaign::assemble_report(spec, blocks, collected);
}

}  // namespace pssp::dist
