// Ablation for the Section V-C caveat: the instrumentation path halves the
// canary to 32 bits — "we acknowledge the drop of canary entropy.
// Nonetheless ... the adversary constantly faces the challenge of breaking
// a 32-bit canary" because every failed round re-randomizes it.
//
// Method: whole-canary random guessing against the forking server with the
// attacker given all but the low b bits (the entropy-reduction harness of
// attack/brute_force.hpp). Median trials-to-break are measured for small b
// and checked against the 2^(b-1) expectation, then extrapolated to the
// deployed widths. Run for both SSP and P-SSP-32: the curves must match —
// the paper's claim that P-SSP costs the exhaustive attacker exactly as
// much as SSP (Section III-C-1) — while the *byte-by-byte* shortcut (the
// reason SSP's effective strength is 1024 trials, not 2^63) exists only
// against SSP.

#include <algorithm>
#include <cmath>
#include <vector>

#include "attack/brute_force.hpp"
#include "bench_util.hpp"
#include "core/tls_layout.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

constexpr int runs_per_point = 5;

double median_trials(scheme_kind kind, unsigned bits) {
    const auto profile = workload::nginx_profile();
    std::vector<double> trials;
    for (int run = 0; run < runs_per_point; ++run) {
        bench::server_under_test sut{profile, kind,
                                     1000 + static_cast<std::uint64_t>(run)};
        attack::brute_force_config cfg;
        cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
        cfg.unknown_bits = bits;
        cfg.true_canary_hint = core::tls_load(sut.server.master(), core::tls_canary);
        cfg.max_trials = std::uint64_t{1} << (bits + 4);
        cfg.rng_seed = 555 + static_cast<std::uint64_t>(run);
        attack::brute_force atk{sut.server, kind, cfg};
        const auto r =
            atk.run(sut.binary.symbols.at("win"), sut.binary.data_base);
        trials.push_back(r.hijacked ? static_cast<double>(r.trials)
                                    : static_cast<double>(cfg.max_trials));
    }
    return util::quantile(trials, 0.5);
}

}  // namespace

int main() {
    bench::print_header("Ablation — canary width vs brute-force cost",
                        "Section V-C caveat (32-bit downgrade) + Section III-C-1");

    util::text_table table{{"unknown bits b", "SSP median trials",
                            "P-SSP-32 median trials", "model 2^(b-1)"}};
    for (const unsigned bits : {6u, 8u, 10u, 12u}) {
        const double ssp_med = median_trials(scheme_kind::ssp, bits);
        const double pssp_med = median_trials(scheme_kind::p_ssp32, bits);
        table.add_row({std::to_string(bits), util::fmt(ssp_med, 0),
                       util::fmt(pssp_med, 0),
                       util::fmt(std::pow(2.0, bits - 1), 0)});
    }
    std::printf("%s\n", table.render("Measured trials-to-hijack (median of 5)").c_str());

    std::printf("extrapolation along the 2^(b-1) model:\n");
    std::printf("  32-bit canary (instrumented P-SSP): ~%.2e expected trials\n",
                std::pow(2.0, 31));
    std::printf("  64-bit canary (compiled P-SSP):     ~%.2e expected trials\n",
                std::pow(2.0, 63));
    std::printf("  byte-by-byte vs SSP (the real threat): ~1.0e+03 trials\n\n");
    std::printf("paper's argument reproduced: the 32-bit downgrade still leaves the\n"
                "attacker ~2^31 >> 1024 trials, because each failed attempt faces a\n"
                "*fresh* canary; and P-SSP's exhaustive-search cost equals SSP's.\n");
    return 0;
}
