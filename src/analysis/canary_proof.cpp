#include "analysis/canary_proof.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <utility>

#include "binfmt/stdlib.hpp"
#include "core/tls_layout.hpp"

namespace pssp::analysis {

using vm::opcode;
using vm::reg;
using vm::xreg;

namespace {

constexpr std::uint16_t bit(canary_source s) noexcept {
    return static_cast<std::uint16_t>(s);
}

// ---- Abstract values --------------------------------------------------------

enum class taint_kind : std::uint8_t {
    clean = 0,
    canary_ptr = 1,  // pointer into a canary container (CAB/gbuf/DCR head)
    canary = 2,      // canary material itself
};

struct value_taint {
    taint_kind kind = taint_kind::clean;
    std::uint16_t sources = 0;
    std::set<std::int32_t> slots;  // recorded canary slots feeding this value

    [[nodiscard]] bool is_canary() const noexcept { return kind == taint_kind::canary; }

    void clear() { *this = value_taint{}; }

    void join(const value_taint& o) {
        kind = std::max(kind, o.kind);
        sources |= o.sources;
        slots.insert(o.slots.begin(), o.slots.end());
    }

    friend bool operator==(const value_taint&, const value_taint&) = default;
};

// Per-slot protocol state; min-joined at merges so "checked" survives only
// when every inflowing path checked.
enum class slot_state : std::uint8_t {
    untracked = 0,
    clobbered = 1,
    installed = 2,
    checked = 3,
};

[[nodiscard]] const char* to_string(slot_state s) noexcept {
    switch (s) {
        case slot_state::untracked: return "untracked";
        case slot_state::clobbered: return "clobbered";
        case slot_state::installed: return "installed";
        case slot_state::checked: return "checked";
    }
    return "?";
}

constexpr std::int32_t depth_unknown = std::numeric_limits<std::int32_t>::min();

struct abstract_state {
    std::array<value_taint, vm::gpr_count> gprs{};
    std::array<value_taint, vm::xmm_count> xmms{};
    value_taint flags{};
    bool flags_from_call = false;  // flags produced by a checking call
    std::int32_t depth = 0;        // bytes pushed since function entry
    std::int32_t rbp_depth = 0;    // depth captured by `mov rbp, rsp`
    bool rbp_set = false;          // rbp currently anchors this frame
    bool torn = false;             // after `leave`
    std::map<std::int32_t, slot_state> slot_states;

    [[nodiscard]] value_taint& gpr(reg r) { return gprs[static_cast<std::size_t>(r)]; }
    [[nodiscard]] value_taint& xmm(xreg x) { return xmms[static_cast<std::size_t>(x)]; }

    void bump_depth(std::int32_t delta) {
        if (depth != depth_unknown) depth += delta;
    }

    void join(const abstract_state& o) {
        for (std::size_t i = 0; i < gprs.size(); ++i) gprs[i].join(o.gprs[i]);
        for (std::size_t i = 0; i < xmms.size(); ++i) xmms[i].join(o.xmms[i]);
        flags.join(o.flags);
        flags_from_call = flags_from_call || o.flags_from_call;
        if (depth != o.depth) depth = depth_unknown;
        if (rbp_depth != o.rbp_depth) rbp_depth = depth_unknown;
        rbp_set = rbp_set && o.rbp_set;
        torn = torn || o.torn;
        // min-join; a slot missing on either side is untracked there.
        for (auto it = slot_states.begin(); it != slot_states.end();) {
            const auto oit = o.slot_states.find(it->first);
            const auto other =
                oit == o.slot_states.end() ? slot_state::untracked : oit->second;
            it->second = std::min(it->second, other);
            if (it->second == slot_state::untracked)
                it = slot_states.erase(it);
            else
                ++it;
        }
        // keys only on the other side join to untracked: nothing to add.
    }

    friend bool operator==(const abstract_state&, const abstract_state&) = default;
};

[[nodiscard]] bool is_caller_saved(reg r) noexcept {
    switch (r) {
        case reg::rax:
        case reg::rcx:
        case reg::rdx:
        case reg::rsi:
        case reg::rdi:
        case reg::r8:
        case reg::r9:
        case reg::r10:
        case reg::r11:
            return true;
        default:
            return false;
    }
}

[[nodiscard]] std::size_t store_width(opcode op) noexcept {
    switch (op) {
        case opcode::mov_mr:
        case opcode::mov_mi:
            return 8;
        case opcode::mov32_mr:
            return 4;
        case opcode::mov8_mr:
            return 1;
        case opcode::movdqu_mx:
            return 16;
        default:
            return 0;
    }
}

[[nodiscard]] std::size_t load_width(opcode op) noexcept {
    switch (op) {
        case opcode::mov_rm:
        case opcode::xor_rm:
        case opcode::cmp_rm:
            return 8;
        case opcode::mov32_rm:
            return 4;
        case opcode::movzx8_rm:
            return 1;
        case opcode::movhps_xm:
            return 8;
        case opcode::movdqu_xm:
        case opcode::cmp128_xm:
            return 16;
        default:
            return 0;
    }
}

// ---- The per-function interpreter ------------------------------------------

class function_checker {
  public:
    function_checker(const vm::program& prog, const cfg& graph,
                     const binfmt::linked_function& fn, std::uint32_t first,
                     const std::set<std::uint64_t>& abort_addrs,
                     const std::set<std::uint64_t>& owf_addrs)
        : prog_{prog},
          graph_{graph},
          first_{first},
          end_{first + static_cast<std::uint32_t>(fn.insns.size())},
          abort_addrs_{abort_addrs},
          owf_addrs_{owf_addrs} {
        proof_.name = fn.name;
        proof_.first_index = first_;
        proof_.insn_count = static_cast<std::uint32_t>(fn.insns.size());
        proof_.analyzed = true;
    }

    [[nodiscard]] function_proof run() {
        // Slot discovery and checking are entangled (a load is only canary
        // material if its slot is already recorded), so iterate the whole
        // fixpoint until the recorded-slot set stops growing, and keep only
        // the final round's findings.
        for (int round = 0; round < 8; ++round) {
            const auto before = recorded_.size();
            findings_.clear();
            installs_.clear();
            checks_.clear();
            rets_ = 0;
            fixpoint();
            if (recorded_.size() == before) break;
        }
        finish();
        return std::move(proof_);
    }

  private:
    const vm::program& prog_;
    const cfg& graph_;
    std::uint32_t first_;
    std::uint32_t end_;
    const std::set<std::uint64_t>& abort_addrs_;
    const std::set<std::uint64_t>& owf_addrs_;

    function_proof proof_;
    std::map<std::int32_t, std::int32_t> recorded_;  // slot offset -> bytes
    std::uint16_t sources_seen_ = 0;
    // Deduplicated across fixpoint revisits: (op index, message).
    std::set<std::pair<std::uint32_t, std::string>> findings_;
    std::set<std::pair<std::uint32_t, std::int32_t>> installs_;  // (op, slot)
    std::map<std::uint32_t, check_record> checks_;               // by guard op
    int rets_ = 0;

    void report(std::uint32_t op_index, std::string message) {
        findings_.emplace(op_index, std::move(message));
    }

    // Overlap of [disp, disp+width) with a recorded slot; returns the slot
    // key or nullopt.
    [[nodiscard]] std::optional<std::int32_t> slot_overlap(std::int32_t disp,
                                                           std::size_t width) const {
        const auto lo = static_cast<std::int64_t>(disp);
        const auto hi = lo + static_cast<std::int64_t>(width);
        for (const auto& [off, bytes] : recorded_)
            if (lo < off + bytes && hi > off) return off;
        return std::nullopt;
    }

    [[nodiscard]] bool in_function(std::uint32_t index) const noexcept {
        return index >= first_ && index < end_;
    }

    // Taint of a memory load through `insn`'s memory operand.
    [[nodiscard]] value_taint load_taint(const abstract_state& st,
                                         const vm::instruction& insn,
                                         std::size_t width) const {
        value_taint t;
        if (insn.mem.seg == vm::segment::fs) {
            t.kind = taint_kind::canary;
            switch (insn.mem.disp) {
                case core::tls_canary: t.sources = bit(canary_source::tls_canary); break;
                case core::tls_shadow_c0:
                    t.sources = bit(canary_source::tls_shadow_c0);
                    break;
                case core::tls_shadow_c1:
                    t.sources = bit(canary_source::tls_shadow_c1);
                    break;
                case core::tls_cab_top:
                    t.kind = taint_kind::canary_ptr;
                    t.sources = bit(canary_source::tls_cab);
                    break;
                case core::tls_dcr_head:
                    t.kind = taint_kind::canary_ptr;
                    t.sources = bit(canary_source::tls_dcr);
                    break;
                case core::tls_gbuf_top:
                    t.kind = taint_kind::canary_ptr;
                    t.sources = bit(canary_source::tls_gbuf);
                    break;
                case core::tls_owf_key_lo:
                case core::tls_owf_key_hi:
                    t.sources = bit(canary_source::tls_owf_key);
                    break;
                default:
                    t.kind = taint_kind::clean;
            }
            return t;
        }
        if (insn.mem.base == reg::rbp) {
            if (st.rbp_set && !st.torn && insn.mem.disp < 0) {
                if (const auto slot = slot_overlap(insn.mem.disp, width)) {
                    t.kind = taint_kind::canary;
                    t.slots.insert(*slot);
                }
            }
            return t;
        }
        if (insn.mem.base != reg::none) {
            const auto& base = st.gprs[static_cast<std::size_t>(insn.mem.base)];
            if (base.kind == taint_kind::canary_ptr) {
                // A load through the CAB/gbuf/DCR pointer yields canary
                // material from that container.
                t.kind = taint_kind::canary;
                t.sources = base.sources;
            }
        }
        return t;
    }

    void record_install(abstract_state& st, std::uint32_t i, std::int32_t disp,
                        std::size_t width, const value_taint& src) {
        const auto it = recorded_.find(disp);
        if (it == recorded_.end())
            recorded_.emplace(disp, static_cast<std::int32_t>(width));
        else
            it->second = std::max(it->second, static_cast<std::int32_t>(width));
        sources_seen_ |= src.sources;
        installs_.emplace(i, disp);
        st.slot_states[disp] = slot_state::installed;
    }

    void handle_store(abstract_state& st, std::uint32_t i,
                      const vm::instruction& insn, const value_taint& src) {
        if (insn.mem.seg == vm::segment::fs) return;  // TLS pointer updates
        if (insn.mem.base != reg::rbp || !st.rbp_set || st.torn) return;
        if (insn.mem.disp >= 0) return;
        const auto width = store_width(insn.op);
        if (src.is_canary()) {
            record_install(st, i, insn.mem.disp, width, src);
            return;
        }
        if (const auto slot = slot_overlap(insn.mem.disp, width)) {
            const auto sit = st.slot_states.find(*slot);
            if (sit != st.slot_states.end() && sit->second != slot_state::untracked) {
                report(i, "canary slot [rbp" + std::to_string(*slot) +
                              "] written with non-canary value between install "
                              "and check");
                sit->second = slot_state::clobbered;
            }
        }
    }

    // The first instruction of a guard arm aborts iff it is trap_abort or a
    // call whose target is an abort symbol.
    [[nodiscard]] bool arm_aborts(std::uint32_t index) const {
        if (index >= prog_.insns.size()) return false;
        const auto& insn = prog_.insns[index];
        if (insn.op == opcode::trap_abort) return true;
        return insn.op == opcode::call && abort_addrs_.contains(insn.imm);
    }

    void handle_guard(abstract_state& st, std::uint32_t i) {
        if (!st.flags.is_canary()) return;
        const auto target = prog_.flow[i].target;
        const bool aborting = (target != vm::no_id && arm_aborts(target)) ||
                              arm_aborts(i + 1);
        if (!aborting) {
            if (!st.flags.slots.empty())
                report(i, "canary comparison does not guard an abort path");
            return;
        }
        if (st.flags.slots.empty()) {
            report(i, "canary check reads no installed canary slot");
            return;
        }
        constexpr std::uint16_t required = bit(canary_source::tls_canary) |
                                           bit(canary_source::owf);
        if ((st.flags.sources & required) == 0) {
            report(i, "canary comparison never involves the TLS canary");
            return;
        }
        if (st.torn) report(i, "canary check after frame teardown");
        check_record rec;
        rec.guard_index = i;
        rec.compare_index = flags_origin_;
        rec.kind = st.flags_from_call ? check_kind::checking_call
                                      : check_kind::inline_guard;
        checks_[i] = rec;
        sources_seen_ |= st.flags.sources;
        for (const auto slot : st.flags.slots) {
            auto& state = st.slot_states[slot];
            if (state >= slot_state::clobbered) state = slot_state::checked;
            // untracked stays untracked: a path that never installed must
            // still fail the ret test below.
            if (state == slot_state::untracked) st.slot_states.erase(slot);
        }
    }

    void handle_ret(const abstract_state& st, std::uint32_t i) {
        ++rets_;
        if (st.depth != depth_unknown && st.depth != 0)
            report(i, "ret with unbalanced stack depth (" +
                          std::to_string(st.depth) + " bytes)");
        for (const auto& [slot, bytes] : recorded_) {
            (void)bytes;
            const auto it = st.slot_states.find(slot);
            const auto state =
                it == st.slot_states.end() ? slot_state::untracked : it->second;
            if (state != slot_state::checked)
                report(i, "ret reachable with canary state=" +
                              std::string{to_string(state)} +
                              ", never checked (slot [rbp" + std::to_string(slot) +
                              "])");
        }
    }

    void handle_call(abstract_state& st, std::uint32_t i,
                     const vm::instruction& insn) {
        if (abort_addrs_.contains(insn.imm)) {
            const auto rdi = st.gpr(reg::rdi);
            if (rdi.is_canary() && !rdi.slots.empty()) {
                // Fig 3: the rewritten epilogue hands the packed canary word
                // to __stack_chk_fail, which compares it against C and
                // returns with ZF reflecting the verdict.
                st.flags = rdi;
                st.flags.sources |= bit(canary_source::tls_canary);
                st.flags_from_call = true;
                flags_origin_ = i;
            } else {
                // Compiled failure arm: the call never returns on this path,
                // but propagating its post-state is harmless (the guard that
                // led here already resolved every slot) and keeps the walker
                // simple.
                st.flags.clear();
                st.flags_from_call = false;
            }
        } else if (owf_addrs_.contains(insn.imm)) {
            // xmm15 <- F_{xmm1}(xmm15): the result is canary material
            // carrying both inputs' slot dependencies (the nonce flows in
            // through xmm15).
            value_taint out;
            out.kind = taint_kind::canary;
            out.sources = st.xmm(xreg::xmm15).sources | st.xmm(xreg::xmm1).sources |
                          bit(canary_source::owf);
            out.slots = st.xmm(xreg::xmm15).slots;
            out.slots.insert(st.xmm(xreg::xmm1).slots.begin(),
                             st.xmm(xreg::xmm1).slots.end());
            for (std::size_t r = 0; r < vm::gpr_count; ++r)
                if (is_caller_saved(static_cast<reg>(r))) st.gprs[r].clear();
            st.xmm(xreg::xmm0).clear();
            st.xmm(xreg::xmm1).clear();
            st.xmm(xreg::xmm15) = out;
            st.flags.clear();
            st.flags_from_call = false;
        } else {
            for (std::size_t r = 0; r < vm::gpr_count; ++r)
                if (is_caller_saved(static_cast<reg>(r))) st.gprs[r].clear();
            for (auto& x : st.xmms) x.clear();
            st.flags.clear();
            st.flags_from_call = false;
        }
    }

    // Applies one instruction. Returns false when the path ends here
    // (trap/hlt; ret paths end too but are checked first).
    bool transfer(abstract_state& st, std::uint32_t i) {
        const auto& insn = prog_.insns[i];
        switch (insn.op) {
            case opcode::nop:
            case opcode::sim_delay:
            case opcode::lea:
                if (insn.op == opcode::lea) st.gpr(insn.r1).clear();
                break;
            case opcode::push_r:
            case opcode::push_i:
                st.bump_depth(8);
                break;
            case opcode::pop_r:
                st.bump_depth(-8);
                st.gpr(insn.r1).clear();
                break;
            case opcode::mov_rr:
                if (insn.r1 == reg::rbp && insn.r2 == reg::rsp) {
                    st.rbp_depth = st.depth;
                    st.rbp_set = true;
                    st.torn = false;
                } else if (insn.r1 == reg::rsp && insn.r2 == reg::rbp) {
                    st.depth = st.rbp_depth;
                } else {
                    st.gpr(insn.r1) = st.gpr(insn.r2);
                }
                break;
            case opcode::mov_ri:
                st.gpr(insn.r1).clear();
                break;
            case opcode::mov_rm:
            case opcode::mov32_rm:
            case opcode::movzx8_rm:
                st.gpr(insn.r1) = load_taint(st, insn, load_width(insn.op));
                break;
            case opcode::mov_mr:
            case opcode::mov32_mr:
            case opcode::mov8_mr:
                handle_store(st, i, insn, st.gpr(insn.r2));
                break;
            case opcode::mov_mi:
                handle_store(st, i, insn, value_taint{});
                break;
            case opcode::add_ri:
            case opcode::sub_ri:
                if (insn.r1 == reg::rsp) {
                    const auto delta = static_cast<std::int32_t>(
                        static_cast<std::int64_t>(insn.imm));
                    st.bump_depth(insn.op == opcode::sub_ri ? delta : -delta);
                    st.flags.clear();
                    st.flags_from_call = false;
                    break;
                }
                [[fallthrough]];
            case opcode::xor_ri:
            case opcode::and_ri:
            case opcode::shl_ri:
            case opcode::shr_ri:
            case opcode::imul_ri:
                st.flags = st.gpr(insn.r1);
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            case opcode::add_rr:
            case opcode::sub_rr:
            case opcode::xor_rr:
            case opcode::or_rr:
            case opcode::imul_rr:
                st.gpr(insn.r1).join(st.gpr(insn.r2));
                st.flags = st.gpr(insn.r1);
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            case opcode::xor_rm: {
                const auto loaded = load_taint(st, insn, 8);
                st.gpr(insn.r1).join(loaded);
                st.flags = st.gpr(insn.r1);
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            }
            case opcode::cmp_rr:
            case opcode::test_rr: {
                value_taint f = st.gpr(insn.r1);
                f.join(st.gpr(insn.r2));
                st.flags = f;
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            }
            case opcode::cmp_ri:
                st.flags = st.gpr(insn.r1);
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            case opcode::cmp_rm: {
                value_taint f = st.gpr(insn.r1);
                f.join(load_taint(st, insn, 8));
                st.flags = f;
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            }
            case opcode::rdrand_r: {
                value_taint t;
                t.kind = taint_kind::canary;
                t.sources = bit(canary_source::hw_random);
                st.gpr(insn.r1) = t;
                st.flags = t;  // CF: success bit — consumed by jnc only
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            }
            case opcode::rdtsc: {
                value_taint t;
                t.kind = taint_kind::canary;
                t.sources = bit(canary_source::timestamp);
                st.gpr(reg::rax) = t;
                st.gpr(reg::rdx) = t;
                break;
            }
            case opcode::movq_xr:
                st.xmm(insn.x1) = st.gpr(insn.r2);
                break;
            case opcode::movq_rx:
                st.gpr(insn.r1) = st.xmm(insn.x2);
                break;
            case opcode::movhps_xm:
                st.xmm(insn.x1).join(load_taint(st, insn, 8));
                break;
            case opcode::punpckhqdq_xr:
                st.xmm(insn.x1).join(st.gpr(insn.r2));
                break;
            case opcode::movdqu_xm:
                st.xmm(insn.x1) = load_taint(st, insn, 16);
                break;
            case opcode::movdqu_mx:
                handle_store(st, i, insn, st.xmm(insn.x2));
                break;
            case opcode::cmp128_xm: {
                value_taint f = st.xmm(insn.x1);
                f.join(load_taint(st, insn, 16));
                st.flags = f;
                st.flags_from_call = false;
                flags_origin_ = i;
                break;
            }
            case opcode::je:
            case opcode::jne:
            case opcode::jb:
            case opcode::jae:
            case opcode::jl:
            case opcode::jge:
                handle_guard(st, i);
                break;
            case opcode::jnc:
            case opcode::jmp:
                break;
            case opcode::call:
                handle_call(st, i, insn);
                break;
            case opcode::leave:
                st.depth = st.rbp_depth == depth_unknown ? depth_unknown
                                                         : st.rbp_depth - 8;
                st.rbp_set = false;
                st.torn = true;
                break;
            case opcode::ret:
                handle_ret(st, i);
                return false;
            case opcode::syscall_i:
                st.gpr(reg::rax).clear();
                break;
            case opcode::trap_abort:
            case opcode::hlt:
                return false;
        }
        return true;
    }

    // Successors of `block` the intra-procedural walk follows.
    [[nodiscard]] std::vector<std::uint32_t> walk_successors(
        const basic_block& block) const {
        std::vector<std::uint32_t> out;
        const auto last = block.last();
        const bool is_call = prog_.insns[last].op == opcode::call;
        for (const auto& e : block.succs) {
            // Never descend into callees: calls apply the clobber summary
            // and continue at the return continuation.
            if (is_call && e.kind != edge_kind::call_return) continue;
            const auto target_first = graph_.blocks()[e.to].first;
            if (in_function(target_first)) out.push_back(e.to);
        }
        return out;
    }

    void fixpoint() {
        const auto block_ids = graph_.blocks_in_range(first_, end_);
        if (block_ids.empty()) return;
        const auto entry_block = graph_.block_of(first_);

        std::map<std::uint32_t, abstract_state> in_states;
        in_states[entry_block] = abstract_state{};
        std::vector<std::uint32_t> worklist{entry_block};
        std::size_t budget = 64 * (block_ids.size() + 1) * (recorded_.size() + 4);

        while (!worklist.empty()) {
            if (budget-- == 0)
                throw std::runtime_error{"canary_proof: fixpoint did not converge in " +
                                         proof_.name};
            const auto id = worklist.back();
            worklist.pop_back();
            const auto& block = graph_.blocks()[id];
            abstract_state st = in_states.at(id);
            bool fell_through = true;
            for (std::uint32_t i = block.first; i < block.first + block.count; ++i) {
                if (!transfer(st, i)) {
                    fell_through = false;
                    break;
                }
            }
            if (!fell_through) continue;
            for (const auto succ : walk_successors(block)) {
                const auto it = in_states.find(succ);
                if (it == in_states.end()) {
                    in_states.emplace(succ, st);
                    worklist.push_back(succ);
                } else {
                    abstract_state joined = it->second;
                    joined.join(st);
                    if (!(joined == it->second)) {
                        it->second = std::move(joined);
                        worklist.push_back(succ);
                    }
                }
            }
        }
    }

    void finish() {
        proof_.is_protected = !recorded_.empty();
        proof_.sources = sources_seen_;
        for (const auto& [off, bytes] : recorded_)
            proof_.slots.push_back({off, bytes});
        for (const auto& [op, slot] : installs_) proof_.installs.push_back({op, slot});
        for (const auto& [guard, rec] : checks_) {
            (void)guard;
            proof_.checks.push_back(rec);
        }
        proof_.rets = rets_;
        for (const auto& [op, message] : findings_) {
            violation v;
            v.function = proof_.name;
            v.op_index = op;
            v.block = graph_.block_of(op);
            v.message = message;
            proof_.violations.push_back(std::move(v));
        }
    }

    std::uint32_t flags_origin_ = vm::no_id;
};

}  // namespace

// ---- Public surface ---------------------------------------------------------

std::string source_names(std::uint16_t mask) {
    static constexpr std::pair<canary_source, const char*> names[] = {
        {canary_source::tls_canary, "tls_canary"},
        {canary_source::tls_shadow_c0, "tls_shadow_c0"},
        {canary_source::tls_shadow_c1, "tls_shadow_c1"},
        {canary_source::tls_cab, "tls_cab"},
        {canary_source::tls_dcr, "tls_dcr"},
        {canary_source::tls_gbuf, "tls_gbuf"},
        {canary_source::tls_owf_key, "tls_owf_key"},
        {canary_source::hw_random, "hw_random"},
        {canary_source::timestamp, "timestamp"},
        {canary_source::owf, "owf"},
    };
    std::string out;
    for (const auto& [source, name] : names) {
        if ((mask & bit(source)) == 0) continue;
        if (!out.empty()) out += "+";
        out += name;
    }
    return out.empty() ? "none" : out;
}

bool function_proof::saw_inline_check() const noexcept {
    return std::any_of(checks.begin(), checks.end(), [](const check_record& c) {
        return c.kind == check_kind::inline_guard;
    });
}

bool function_proof::saw_checking_call() const noexcept {
    return std::any_of(checks.begin(), checks.end(), [](const check_record& c) {
        return c.kind == check_kind::checking_call;
    });
}

bool proof_result::clean() const noexcept {
    return std::all_of(functions.begin(), functions.end(),
                       [](const function_proof& f) { return f.clean(); });
}

const function_proof* proof_result::find(const std::string& name) const noexcept {
    for (const auto& f : functions)
        if (f.name == name) return &f;
    return nullptr;
}

std::vector<violation> proof_result::all_violations() const {
    std::vector<violation> out;
    for (const auto& f : functions)
        out.insert(out.end(), f.violations.begin(), f.violations.end());
    return out;
}

proof_result prove_canary_protocol(const binfmt::linked_binary& binary,
                                   const proof_options& options) {
    const auto prog = binary.make_program();
    const auto graph = cfg::recover(*prog);

    std::set<std::uint64_t> abort_addrs;
    for (const char* sym :
         {binfmt::sym_stack_chk_fail, binfmt::sym_fortify_fail}) {
        const auto it = binary.symbols.find(sym);
        if (it != binary.symbols.end()) abort_addrs.insert(it->second);
    }
    if (const auto it = binary.symbols.find("__pssp_stack_chk_fail");
        it != binary.symbols.end())
        abort_addrs.insert(it->second);

    std::set<std::uint64_t> owf_addrs;
    for (const char* sym : {binfmt::sym_aes_encrypt, binfmt::sym_sha1_owf}) {
        const auto it = binary.symbols.find(sym);
        if (it != binary.symbols.end()) owf_addrs.insert(it->second);
    }

    proof_result result;
    for (const auto& fn : binary.functions) {
        if (!options.include_libc && (fn.from_libc || fn.appended)) {
            function_proof skipped;
            skipped.name = fn.name;
            skipped.first_index = prog->index_of(fn.entry);
            skipped.insn_count = static_cast<std::uint32_t>(fn.insns.size());
            result.functions.push_back(std::move(skipped));
            continue;
        }
        const auto first = prog->index_of(fn.entry);
        if (first == vm::no_id || fn.insns.empty()) {
            function_proof skipped;
            skipped.name = fn.name;
            result.functions.push_back(std::move(skipped));
            continue;
        }
        function_checker checker{*prog, graph, fn, first, abort_addrs, owf_addrs};
        result.functions.push_back(checker.run());
    }
    return result;
}

std::uint16_t expected_sources(core::scheme_kind kind, std::size_t canary_count) {
    using core::scheme_kind;
    switch (kind) {
        case scheme_kind::none:
            return 0;
        case scheme_kind::ssp:
        case scheme_kind::raf_ssp:
            return bit(canary_source::tls_canary);
        case scheme_kind::dynaguard:
            // The CAB registration stores the slot *address* through the
            // fs-held top pointer; no canary material flows through it, so
            // the observable mask matches stock SSP.
            return bit(canary_source::tls_canary);
        case scheme_kind::dcr:
            return bit(canary_source::tls_canary) | bit(canary_source::tls_dcr);
        case scheme_kind::p_ssp:
            return bit(canary_source::tls_canary) | bit(canary_source::tls_shadow_c0) |
                   bit(canary_source::tls_shadow_c1);
        case scheme_kind::p_ssp_nt:
            return bit(canary_source::tls_canary) | bit(canary_source::hw_random);
        case scheme_kind::p_ssp_lv:
            return bit(canary_source::tls_canary) |
                   (canary_count > 1 ? bit(canary_source::hw_random) : 0);
        case scheme_kind::p_ssp_owf:
            return bit(canary_source::timestamp) | bit(canary_source::owf);
        case scheme_kind::p_ssp32:
            return bit(canary_source::tls_canary) | bit(canary_source::tls_shadow_c0);
        case scheme_kind::p_ssp_gb:
            return bit(canary_source::tls_canary) | bit(canary_source::hw_random) |
                   bit(canary_source::tls_gbuf);
        case scheme_kind::p_ssp_c0tls:
            return bit(canary_source::tls_canary) | bit(canary_source::tls_shadow_c0);
    }
    return 0;
}

}  // namespace pssp::analysis
