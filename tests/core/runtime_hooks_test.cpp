// The libpoly_canary analog: per-scheme TLS state at startup, and what each
// scheme's fork/pthread wrapper does (and crucially does NOT do) to the TLS.

#include <gtest/gtest.h>

#include <unordered_set>

#include "compiler/codegen.hpp"
#include "core/canary.hpp"
#include "core/runtime.hpp"
#include "core/tls_layout.hpp"
#include "proc/process.hpp"
#include "test_helpers.hpp"

namespace pssp {
namespace {

using core::scheme_kind;
using core::tls_load;

struct fixture {
    testing::built_program bp;
    explicit fixture(scheme_kind kind)
        : bp{testing::vulnerable_module(), kind, /*seed=*/7} {}
    vm::machine& proc() { return bp.proc0; }
    vm::machine fork() { return bp.manager.fork_child(bp.proc0); }
    vm::machine thread() { return bp.manager.spawn_thread(bp.proc0); }
};

TEST(runtime, setup_installs_tls_canary) {
    for (const auto kind : core::all_scheme_kinds()) {
        if (kind == scheme_kind::none) continue;
        fixture fx{kind};
        EXPECT_NE(tls_load(fx.proc(), core::tls_canary), 0u) << core::to_string(kind);
    }
}

TEST(runtime, p_ssp_shadow_pair_xors_to_c) {
    fixture fx{scheme_kind::p_ssp};
    const auto c = tls_load(fx.proc(), core::tls_canary);
    const auto c0 = tls_load(fx.proc(), core::tls_shadow_c0);
    const auto c1 = tls_load(fx.proc(), core::tls_shadow_c1);
    EXPECT_EQ(c0 ^ c1, c);
}

// The defining P-SSP property: fork refreshes the *shadow*, never C.
TEST(runtime, p_ssp_fork_refreshes_shadow_only) {
    fixture fx{scheme_kind::p_ssp};
    const auto c_before = tls_load(fx.proc(), core::tls_canary);
    const auto c0_before = tls_load(fx.proc(), core::tls_shadow_c0);

    auto child = fx.fork();
    EXPECT_EQ(tls_load(child, core::tls_canary), c_before) << "C must not change";
    EXPECT_NE(tls_load(child, core::tls_shadow_c0), c0_before)
        << "shadow must be re-randomized";
    EXPECT_EQ(tls_load(child, core::tls_shadow_c0) ^
                  tls_load(child, core::tls_shadow_c1),
              c_before)
        << "fresh pair still recombines to C";

    // Parent TLS untouched ("only the child process's TLS is updated").
    EXPECT_EQ(tls_load(fx.proc(), core::tls_shadow_c0), c0_before);
}

TEST(runtime, p_ssp_every_fork_gets_a_distinct_pair) {
    fixture fx{scheme_kind::p_ssp};
    std::unordered_set<std::uint64_t> seen;
    for (int i = 0; i < 64; ++i)
        EXPECT_TRUE(seen.insert(tls_load(fx.fork(), core::tls_shadow_c0)).second);
}

TEST(runtime, ssp_fork_inherits_everything) {
    fixture fx{scheme_kind::ssp};
    const auto c = tls_load(fx.proc(), core::tls_canary);
    auto child = fx.fork();
    EXPECT_EQ(tls_load(child, core::tls_canary), c);  // the BROP precondition
}

TEST(runtime, raf_fork_renews_c_itself) {
    fixture fx{scheme_kind::raf_ssp};
    const auto c = tls_load(fx.proc(), core::tls_canary);
    auto child = fx.fork();
    EXPECT_NE(tls_load(child, core::tls_canary), c);  // and breaks old frames
}

TEST(runtime, p_ssp_nt_fork_touches_nothing) {
    fixture fx{scheme_kind::p_ssp_nt};
    const auto before = fx.proc().mem().tls_bytes();
    std::vector<std::uint8_t> snapshot{before.begin(), before.end()};
    auto child = fx.fork();
    const auto after = child.mem().tls_bytes();
    EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), after.begin()))
        << "P-SSP-NT's whole point: no TLS update on fork";
    EXPECT_FALSE(fx.bp.sch->updates_tls_on_fork());
}

TEST(runtime, pthread_hook_mirrors_fork_for_p_ssp) {
    fixture fx{scheme_kind::p_ssp};
    const auto c = tls_load(fx.proc(), core::tls_canary);
    const auto c0 = tls_load(fx.proc(), core::tls_shadow_c0);
    auto thread = fx.thread();
    EXPECT_EQ(tls_load(thread, core::tls_canary), c);
    EXPECT_NE(tls_load(thread, core::tls_shadow_c0), c0);
}

TEST(runtime, owf_key_lives_in_r12_r13_with_tls_backup) {
    fixture fx{scheme_kind::p_ssp_owf};
    const auto key_lo = fx.proc().get(vm::reg::r13);
    const auto key_hi = fx.proc().get(vm::reg::r12);
    EXPECT_NE(key_lo, 0u);
    EXPECT_EQ(tls_load(fx.proc(), core::tls_owf_key_lo), key_lo);
    EXPECT_EQ(tls_load(fx.proc(), core::tls_owf_key_hi), key_hi);
}

TEST(runtime, owf_thread_restores_key_registers) {
    fixture fx{scheme_kind::p_ssp_owf};
    auto thread = fx.thread();
    // A fresh thread must receive K in its callee-saved registers again.
    EXPECT_EQ(thread.get(vm::reg::r13), fx.proc().get(vm::reg::r13));
    EXPECT_EQ(thread.get(vm::reg::r12), fx.proc().get(vm::reg::r12));
}

TEST(runtime, gb_top_pointer_initialized_and_cloned) {
    fixture fx{scheme_kind::p_ssp_gb};
    const auto top = tls_load(fx.proc(), core::tls_gbuf_top);
    EXPECT_EQ(top, core::gbuf_base(fx.proc()));
    auto child = fx.fork();
    EXPECT_EQ(tls_load(child, core::tls_gbuf_top), top);  // cloned, not reset
}

TEST(runtime, dynaguard_fork_rewrites_recorded_canaries) {
    fixture fx{scheme_kind::dynaguard};
    // Simulate two live frames: record addresses in the CAB and place the
    // old canary value there.
    auto& m = fx.proc();
    const auto c_old = tls_load(m, core::tls_canary);
    const std::uint64_t cab = core::cab_base(m);
    const std::uint64_t slot_a = m.mem().regions().stack_top - 64;
    const std::uint64_t slot_b = m.mem().regions().stack_top - 128;
    m.mem().store64(slot_a, c_old);
    m.mem().store64(slot_b, c_old);
    m.mem().store64(cab, slot_a);
    m.mem().store64(cab + 8, slot_b);
    core::tls_store(m, core::tls_cab_top, cab + 16);

    auto child = fx.fork();
    const auto c_new = tls_load(child, core::tls_canary);
    EXPECT_NE(c_new, c_old);
    EXPECT_EQ(child.mem().load64(slot_a), c_new) << "stale canary not rewritten";
    EXPECT_EQ(child.mem().load64(slot_b), c_new);
    // The parent keeps its canaries (only the child renews).
    EXPECT_EQ(m.mem().load64(slot_a), c_old);
}

TEST(runtime, instrumented_stack_chk_fail_checks_packed_pair) {
    auto binary = compiler::build_module(testing::vulnerable_module(),
                                         core::make_scheme(scheme_kind::p_ssp32));
    core::bind_instrumented_stack_chk_fail(binary);
    proc::process_manager manager{core::make_scheme(scheme_kind::p_ssp32), 3};
    auto m = manager.create_process(binary);

    const auto c = tls_load(m, core::tls_canary);
    crypto::xoshiro256 rng{5};
    const auto good = core::re_randomize32(c, rng);
    m.set(vm::reg::rdi, good.packed());

    const auto handler = binary.natives.at(binary.symbols.at("__stack_chk_fail"));
    handler(m);  // must return normally with ZF set
    EXPECT_TRUE(m.flags().zf);

    m.set(vm::reg::rdi, good.packed() ^ 0xff);  // corrupt one byte
    EXPECT_THROW(handler(m), vm::native_trap);
}

}  // namespace
}  // namespace pssp
