// Code generation: the emitted prologue/epilogue instruction patterns must
// match the paper's listings (Codes 1-9), and the IR lowering must be
// semantically correct.

#include <gtest/gtest.h>

#include <algorithm>

#include "binfmt/stdlib.hpp"
#include "compiler/codegen.hpp"
#include "core/tls_layout.hpp"
#include "proc/process.hpp"
#include "test_helpers.hpp"

namespace pssp {
namespace {

using core::scheme_kind;
using vm::opcode;

const binfmt::linked_function& protected_fn(const binfmt::linked_binary& binary) {
    return *binary.find("handle");
}

binfmt::linked_binary build(scheme_kind kind) {
    return compiler::build_module(testing::vulnerable_module(),
                                  core::make_scheme(kind));
}

int count_op(const binfmt::linked_function& fn, opcode op) {
    return static_cast<int>(std::count_if(
        fn.insns.begin(), fn.insns.end(),
        [op](const vm::instruction& i) { return i.op == op; }));
}

bool reads_fs(const binfmt::linked_function& fn, std::int32_t offset) {
    return std::any_of(fn.insns.begin(), fn.insns.end(), [&](const vm::instruction& i) {
        return i.mem.seg == vm::segment::fs && i.mem.disp == offset;
    });
}

TEST(codegen, every_function_starts_with_the_frame_idiom) {
    const auto binary = build(scheme_kind::ssp);
    const auto& fn = protected_fn(binary);
    // Code 1 lines 1-3: push %rbp; mov %rsp,%rbp; sub $N,%rsp.
    EXPECT_EQ(fn.insns[0].op, opcode::push_r);
    EXPECT_EQ(fn.insns[0].r1, vm::reg::rbp);
    EXPECT_EQ(fn.insns[1].op, opcode::mov_rr);
    EXPECT_EQ(fn.insns[2].op, opcode::sub_ri);
}

TEST(codegen, ssp_prologue_copies_tls_canary) {
    const auto binary = build(scheme_kind::ssp);
    const auto& fn = protected_fn(binary);
    // Code 1 lines 4-5.
    EXPECT_EQ(fn.insns[3].op, opcode::mov_rm);
    EXPECT_EQ(fn.insns[3].mem.disp, core::tls_canary);
    EXPECT_EQ(fn.insns[4].op, opcode::mov_mr);
    EXPECT_EQ(fn.insns[4].mem.disp, -8);
}

TEST(codegen, p_ssp_prologue_copies_both_shadow_words) {
    const auto binary = build(scheme_kind::p_ssp);
    const auto& fn = protected_fn(binary);
    // Code 3: two fs loads (0x2a8, 0x2b0) into rbp-8 / rbp-16.
    EXPECT_TRUE(reads_fs(fn, core::tls_shadow_c0));
    EXPECT_TRUE(reads_fs(fn, core::tls_shadow_c1));
    EXPECT_EQ(fn.insns[4].mem.disp, -8);
    EXPECT_EQ(fn.insns[6].mem.disp, -16);
}

TEST(codegen, p_ssp_epilogue_is_the_double_xor_of_code4) {
    const auto binary = build(scheme_kind::p_ssp);
    const auto& fn = protected_fn(binary);
    // Code 4 shape: ... xor %rdi,%rdx; xor %fs:0x28,%rdx; je; call.
    bool found = false;
    for (std::size_t i = 0; i + 3 < fn.insns.size(); ++i) {
        if (fn.insns[i].op == opcode::xor_rr && fn.insns[i + 1].op == opcode::xor_rm &&
            fn.insns[i + 1].mem.disp == core::tls_canary &&
            fn.insns[i + 2].op == opcode::je && fn.insns[i + 3].op == opcode::call)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(codegen, p_ssp_nt_prologue_uses_rdrand_not_tls_shadow) {
    const auto binary = build(scheme_kind::p_ssp_nt);
    const auto& fn = protected_fn(binary);
    // Code 7: rdrand + xor against C; no shadow-canary access anywhere.
    EXPECT_EQ(count_op(fn, opcode::rdrand_r), 1);
    EXPECT_FALSE(reads_fs(fn, core::tls_shadow_c0));
    EXPECT_TRUE(reads_fs(fn, core::tls_canary));
}

TEST(codegen, owf_prologue_matches_code8_sequence) {
    const auto binary = build(scheme_kind::p_ssp_owf);
    const auto& fn = protected_fn(binary);
    EXPECT_EQ(count_op(fn, opcode::rdtsc), 1);
    EXPECT_EQ(count_op(fn, opcode::movhps_xm), 2);      // prologue + epilogue
    EXPECT_EQ(count_op(fn, opcode::punpckhqdq_xr), 2);  // key packing twice
    EXPECT_EQ(count_op(fn, opcode::cmp128_xm), 1);      // Code 9's compare
    // Two AES calls: one in the prologue, one re-encryption in the epilogue.
    const auto aes_addr = binary.symbols.at(binfmt::sym_aes_encrypt);
    int aes_calls = 0;
    for (const auto& insn : fn.insns)
        aes_calls += insn.op == opcode::call && insn.imm == aes_addr;
    EXPECT_EQ(aes_calls, 2);
}

TEST(codegen, unprotected_functions_have_no_canary_code) {
    const auto binary = build(scheme_kind::p_ssp);
    const auto& win = *binary.find("win");  // never_protect
    for (const auto& insn : win.insns) {
        EXPECT_NE(insn.mem.seg, vm::segment::fs) << vm::to_string(insn);
        EXPECT_NE(insn.op, opcode::rdrand_r);
    }
}

TEST(codegen, scalar_only_function_gets_no_canary_under_fstack_protector) {
    compiler::ir_module mod;
    mod.name = "plain";
    auto& fn = mod.add_function("scalars_only");
    const int x = compiler::add_local(fn, "x");
    fn.body.push_back(compiler::assign_stmt{x, compiler::const_ref{5}});
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{x}});
    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::p_ssp));
    for (const auto& insn : binary.find("scalars_only")->insns)
        EXPECT_NE(insn.mem.seg, vm::segment::fs);
}

TEST(codegen, epilogue_precedes_every_ret) {
    // A function with two returns gets two full canary checks (the pass
    // "creates the epilogue right before each ret instruction").
    compiler::ir_module mod;
    mod.name = "tworet";
    auto& fn = mod.add_function("f");
    (void)compiler::add_local(fn, "buf", 16, /*is_buffer=*/true);
    const int x = compiler::add_local(fn, "x");
    compiler::if_stmt branch{compiler::local_ref{x}, compiler::relop::eq,
                             compiler::const_ref{0}, {}, {}};
    branch.then_body.push_back(compiler::return_stmt{compiler::const_ref{1}});
    fn.body.push_back(branch);
    fn.body.push_back(compiler::return_stmt{compiler::const_ref{2}});
    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::ssp));
    const auto& lf = *binary.find("f");
    EXPECT_EQ(count_op(lf, opcode::ret), 2);
    int checks = 0;
    for (const auto& insn : lf.insns)
        checks += insn.op == opcode::xor_rm && insn.mem.disp == core::tls_canary;
    EXPECT_EQ(checks, 2);
}

TEST(codegen, lv_write_site_checks_double_the_check_count) {
    core::scheme_options with_checks;
    with_checks.lv_check_after_write = true;
    const auto plain = compiler::build_module(
        testing::vulnerable_module(),
        core::make_scheme(scheme_kind::p_ssp_lv));
    const auto checked = compiler::build_module(
        testing::vulnerable_module(),
        core::make_scheme(scheme_kind::p_ssp_lv, with_checks));
    auto count_checks = [](const binfmt::linked_binary& b) {
        int n = 0;
        for (const auto& insn : b.find("handle")->insns)
            n += insn.op == opcode::xor_rm && insn.mem.disp == core::tls_canary;
        return n;
    };
    // One strcpy call in the handler => exactly one extra collective check.
    EXPECT_EQ(count_checks(checked), count_checks(plain) + 1);
}

// ---- IR lowering semantics ----

TEST(codegen, parameters_arrive_in_sysv_registers) {
    compiler::ir_module mod;
    mod.name = "params";
    auto& fn = mod.add_function("sum3");
    fn.param_count = 3;
    const int a = compiler::add_local(fn, "a");
    const int b = compiler::add_local(fn, "b");
    const int c = compiler::add_local(fn, "c");
    const int t = compiler::add_local(fn, "t");
    fn.body.push_back(compiler::compute_stmt{t, compiler::local_ref{a},
                                             compiler::binop::add,
                                             compiler::local_ref{b}});
    fn.body.push_back(compiler::compute_stmt{t, compiler::local_ref{t},
                                             compiler::binop::add,
                                             compiler::local_ref{c}});
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{t}});

    auto& main_fn = mod.add_function("main");
    const int r = compiler::add_local(main_fn, "r");
    main_fn.body.push_back(compiler::call_stmt{
        "sum3",
        {compiler::const_ref{100}, compiler::const_ref{20}, compiler::const_ref{3}},
        r});
    main_fn.body.push_back(compiler::return_stmt{compiler::local_ref{r}});

    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::none));
    proc::process_manager manager{core::make_scheme(scheme_kind::none), 1};
    auto m = manager.create_process(binary);
    m.call_function(binary.symbols.at("main"));
    EXPECT_EQ(m.run().exit_code, 123);
}

TEST(codegen, loops_iterate_exactly_n_times) {
    compiler::ir_module mod;
    mod.name = "loops";
    auto& fn = mod.add_function("main");
    const int i = compiler::add_local(fn, "i");
    const int acc = compiler::add_local(fn, "acc");
    fn.body.push_back(compiler::assign_stmt{acc, compiler::const_ref{0}});
    compiler::loop_stmt loop{i, 37, {}};
    loop.body.push_back(compiler::compute_stmt{
        acc, compiler::local_ref{acc}, compiler::binop::add, compiler::const_ref{2}});
    fn.body.push_back(loop);
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{acc}});

    const auto binary =
        compiler::build_module(mod, core::make_scheme(scheme_kind::none));
    proc::process_manager manager{core::make_scheme(scheme_kind::none), 1};
    auto m = manager.create_process(binary);
    m.call_function(binary.symbols.at("main"));
    m.set_fuel(100'000);
    EXPECT_EQ(m.run().exit_code, 74);
}

TEST(codegen, shifts_require_constant_amounts) {
    compiler::ir_module mod;
    mod.name = "badshift";
    auto& fn = mod.add_function("f");
    const int x = compiler::add_local(fn, "x");
    fn.body.push_back(compiler::compute_stmt{x, compiler::local_ref{x},
                                             compiler::binop::shl,
                                             compiler::local_ref{x}});
    EXPECT_THROW(
        (void)compiler::build_module(mod, core::make_scheme(scheme_kind::none)),
        std::invalid_argument);
}

TEST(codegen, too_many_arguments_is_an_error) {
    compiler::ir_module mod;
    mod.name = "badcall";
    auto& fn = mod.add_function("f");
    fn.body.push_back(compiler::call_stmt{
        "g",
        {compiler::const_ref{1}, compiler::const_ref{2}, compiler::const_ref{3},
         compiler::const_ref{4}, compiler::const_ref{5}},
        std::nullopt});
    EXPECT_THROW(
        (void)compiler::build_module(mod, core::make_scheme(scheme_kind::none)),
        std::invalid_argument);
}

}  // namespace
}  // namespace pssp
