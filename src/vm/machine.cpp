#include "vm/machine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/bytes.hpp"

namespace pssp::vm {

std::string to_string(exec_status status) {
    switch (status) {
        case exec_status::running: return "running";
        case exec_status::exited: return "exited";
        case exec_status::trapped: return "trapped";
        case exec_status::syscalled: return "syscalled";
        case exec_status::out_of_fuel: return "out_of_fuel";
    }
    return "?";
}

std::string to_string(trap_kind trap) {
    switch (trap) {
        case trap_kind::none: return "none";
        case trap_kind::stack_smash: return "stack_smash";
        case trap_kind::segfault: return "segfault";
        case trap_kind::invalid_jump: return "invalid_jump";
        case trap_kind::stack_overrun: return "stack_overrun";
    }
    return "?";
}

machine::machine(std::shared_ptr<const program> prog, memory::layout layout,
                 std::uint64_t entropy_seed)
    : prog_{std::move(prog)},
      mem_{layout},
      fs_base_{layout.tls_base},
      entropy_{entropy_seed} {
    if (!prog_) throw std::invalid_argument{"machine requires a program"};
    if (prog_->flow.size() != prog_->insns.size())
        throw std::invalid_argument{
            "machine requires a finalized program (program::finalize resolves "
            "control flow; linked_binary::make_program does this for you)"};
    gpr_[static_cast<std::size_t>(reg::rsp)] = layout.stack_top - initial_stack_headroom;
}

std::uint64_t machine::get(reg r) const noexcept {
    assert(r != reg::none);
    return gpr_[static_cast<std::size_t>(r)];
}

void machine::set(reg r, std::uint64_t value) noexcept {
    assert(r != reg::none);
    gpr_[static_cast<std::size_t>(r)] = value;
}

machine::xmm_value machine::get_x(xreg x) const noexcept {
    assert(x != xreg::none);
    return xmm_[static_cast<std::size_t>(x)];
}

void machine::set_x(xreg x, xmm_value value) noexcept {
    assert(x != xreg::none);
    xmm_[static_cast<std::size_t>(x)] = value;
}

std::uint64_t machine::effective_address(const mem_operand& m) const noexcept {
    std::uint64_t addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(m.disp));
    if (m.base != reg::none) addr += get(m.base);
    if (m.seg == segment::fs) addr += fs_base_;
    return addr;
}

bool machine::ld(std::uint64_t addr, std::size_t size, std::uint64_t& value,
                 run_result& out) noexcept {
    if (const std::uint8_t* p = mem_.try_at(addr, size)) [[likely]] {
        switch (size) {
            case 1: value = *p; break;
            case 4: value = util::load_le32(std::span{p, 4}); break;
            default: value = util::load_le64(std::span{p, 8}); break;
        }
        return true;
    }
    out.status = exec_status::trapped;
    out.trap = trap_kind::segfault;
    out.fault_addr = addr;
    return false;
}

bool machine::st(std::uint64_t addr, std::size_t size, std::uint64_t value,
                 run_result& out) noexcept {
    if (std::uint8_t* p = mem_.try_at_mut(addr, size)) [[likely]] {
        switch (size) {
            case 1: *p = static_cast<std::uint8_t>(value); break;
            case 4: util::store_le32(std::span{p, 4},
                                     static_cast<std::uint32_t>(value)); break;
            default: util::store_le64(std::span{p, 8}, value); break;
        }
        return true;
    }
    out.status = exec_status::trapped;
    out.trap = trap_kind::segfault;
    out.fault_addr = addr;
    return false;
}

bool machine::push64(std::uint64_t value, run_result& out) noexcept {
    const std::uint64_t rsp = get(reg::rsp) - 8;
    if (!st(rsp, 8, value, out)) return false;
    set(reg::rsp, rsp);
    return true;
}

bool machine::pop64(std::uint64_t& value, run_result& out) noexcept {
    const std::uint64_t rsp = get(reg::rsp);
    if (!ld(rsp, 8, value, out)) return false;
    set(reg::rsp, rsp + 8);
    return true;
}

bool machine::jump_to(std::uint64_t addr, run_result& out) {
    const std::uint32_t index = prog_->index_of(addr);
    if (index == no_id) {
        out.status = exec_status::trapped;
        out.trap = trap_kind::invalid_jump;
        out.fault_addr = addr;
        return false;
    }
    rip_ = index;
    return true;
}

void machine::call_function(std::uint64_t entry) {
    finished_valid_ = false;
    set(reg::rsp, mem_.regions().stack_top - initial_stack_headroom);
    mem_.store64(get(reg::rsp) - 8, return_sentinel);
    set(reg::rsp, get(reg::rsp) - 8);
    const std::uint32_t index = prog_->index_of(entry);
    if (index == no_id)
        throw std::invalid_argument{"call_function: entry is not an instruction start"};
    rip_ = index;
    rip_valid_ = true;
}

void machine::complete_syscall(std::uint64_t rax_value) {
    set(reg::rax, rax_value);
}

void machine::set_alu_flags(std::uint64_t result) noexcept {
    flags_.zf = result == 0;
}

run_result machine::step() {
    run_result out;
    const instruction& insn = prog_->insns[rip_];
    cycles_ += cost_table_[insn.op];
    ++steps_;

    // Most instructions fall through; control flow overrides this.
    std::uint32_t next_rip = rip_ + 1;

    switch (insn.op) {
        case opcode::nop:
            break;
        case opcode::push_r:
            if (!push64(get(insn.r1), out)) return out;
            break;
        case opcode::push_i:
            if (!push64(insn.imm, out)) return out;
            break;
        case opcode::pop_r: {
            std::uint64_t v;
            if (!pop64(v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov_rr:
            set(insn.r1, get(insn.r2));
            break;
        case opcode::mov_ri:
            set(insn.r1, insn.imm);
            break;
        case opcode::mov_rm: {
            std::uint64_t v;
            if (!ld(effective_address(insn.mem), 8, v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov_mr:
            if (!st(effective_address(insn.mem), 8, get(insn.r2), out)) return out;
            break;
        case opcode::mov_mi:
            if (!st(effective_address(insn.mem), 8, insn.imm, out)) return out;
            break;
        case opcode::mov32_rm: {
            std::uint64_t v;
            if (!ld(effective_address(insn.mem), 4, v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov32_mr:
            if (!st(effective_address(insn.mem), 4,
                    static_cast<std::uint32_t>(get(insn.r2)), out))
                return out;
            break;
        case opcode::movzx8_rm: {
            std::uint64_t v;
            if (!ld(effective_address(insn.mem), 1, v, out)) return out;
            set(insn.r1, v);
            break;
        }
        case opcode::mov8_mr:
            if (!st(effective_address(insn.mem), 1,
                    static_cast<std::uint8_t>(get(insn.r2)), out))
                return out;
            break;
        case opcode::lea:
            set(insn.r1, effective_address(insn.mem));
            break;
        case opcode::add_rr: {
            const std::uint64_t v = get(insn.r1) + get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::add_ri: {
            const std::uint64_t v = get(insn.r1) + insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::sub_rr: {
            const std::uint64_t v = get(insn.r1) - get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::sub_ri: {
            const std::uint64_t v = get(insn.r1) - insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_rr: {
            const std::uint64_t v = get(insn.r1) ^ get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_ri: {
            const std::uint64_t v = get(insn.r1) ^ insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::xor_rm: {
            std::uint64_t mval;
            if (!ld(effective_address(insn.mem), 8, mval, out)) return out;
            const std::uint64_t v = get(insn.r1) ^ mval;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::or_rr: {
            const std::uint64_t v = get(insn.r1) | get(insn.r2);
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::and_ri: {
            const std::uint64_t v = get(insn.r1) & insn.imm;
            set(insn.r1, v);
            set_alu_flags(v);
            break;
        }
        case opcode::shl_ri:
            set(insn.r1, get(insn.r1) << (insn.imm & 63));
            set_alu_flags(get(insn.r1));
            break;
        case opcode::shr_ri:
            set(insn.r1, get(insn.r1) >> (insn.imm & 63));
            set_alu_flags(get(insn.r1));
            break;
        case opcode::imul_rr:
            set(insn.r1, get(insn.r1) * get(insn.r2));
            break;
        case opcode::imul_ri:
            set(insn.r1, get(insn.r1) * insn.imm);
            break;
        case opcode::cmp_rr:
        case opcode::cmp_ri:
        case opcode::cmp_rm: {
            const std::uint64_t a = get(insn.r1);
            std::uint64_t b = 0;
            if (insn.op == opcode::cmp_rr) {
                b = get(insn.r2);
            } else if (insn.op == opcode::cmp_ri) {
                b = insn.imm;
            } else {
                if (!ld(effective_address(insn.mem), 8, b, out)) return out;
            }
            flags_.zf = a == b;
            flags_.lt_unsigned = a < b;
            flags_.lt_signed = static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
            break;
        }
        case opcode::test_rr:
            flags_.zf = (get(insn.r1) & get(insn.r2)) == 0;
            break;
        case opcode::je:
        case opcode::jne:
        case opcode::jb:
        case opcode::jae:
        case opcode::jl:
        case opcode::jge:
        case opcode::jnc:
        case opcode::jmp: {
            bool taken = true;
            switch (insn.op) {
                case opcode::je: taken = flags_.zf; break;
                case opcode::jne: taken = !flags_.zf; break;
                case opcode::jb: taken = flags_.lt_unsigned; break;
                case opcode::jae: taken = !flags_.lt_unsigned; break;
                case opcode::jl: taken = flags_.lt_signed; break;
                case opcode::jge: taken = !flags_.lt_signed; break;
                case opcode::jnc: taken = !flags_.cf; break;
                default: break;  // jmp
            }
            if (taken) {
                const std::uint32_t target = prog_->flow[rip_].target;
                if (target == no_id) {
                    out.status = exec_status::trapped;
                    out.trap = trap_kind::invalid_jump;
                    out.fault_addr = insn.imm;
                    return out;
                }
                next_rip = target;
            }
            break;
        }
        case opcode::call: {
            const resolved_flow& fl = prog_->flow[rip_];
            if (fl.native != nullptr) {
                // Native helper: model the full call/ret round trip so the
                // helper can observe a genuine frame (return address on the
                // stack) while executing host-side. This is the only edge
                // where exceptions still travel — helpers are arbitrary
                // host code using the throwing memory API and native_trap.
                if (!push64(fl.return_addr, out)) return out;
                try {
                    (*fl.native)(*this);
                } catch (const mem_fault& fault) {
                    out.status = exec_status::trapped;
                    out.trap = trap_kind::segfault;
                    out.fault_addr = fault.addr();
                    return out;
                } catch (const native_trap& trap) {
                    out.status = exec_status::trapped;
                    out.trap = trap.kind;
                    out.fault_addr = current_address();
                    return out;
                }
                std::uint64_t back;
                if (!pop64(back, out)) return out;
                if (back != fl.return_addr) {
                    if (!jump_to(back, out)) return out;
                    next_rip = rip_;
                }
                break;
            }
            if (fl.target == no_id) {
                out.status = exec_status::trapped;
                out.trap = trap_kind::invalid_jump;
                out.fault_addr = insn.imm;
                return out;
            }
            if (!push64(fl.return_addr, out)) return out;
            next_rip = fl.target;
            break;
        }
        case opcode::ret: {
            // The popped target is data from the simulated stack — exactly
            // what an overflow corrupts — so it must resolve dynamically.
            std::uint64_t target;
            if (!pop64(target, out)) return out;
            if (target == return_sentinel) {
                out.status = exec_status::exited;
                out.exit_code = static_cast<std::int64_t>(get(reg::rax));
                return out;
            }
            if (!jump_to(target, out)) return out;
            next_rip = rip_;
            break;
        }
        case opcode::leave: {
            set(reg::rsp, get(reg::rbp));
            std::uint64_t v;
            if (!pop64(v, out)) return out;
            set(reg::rbp, v);
            break;
        }
        case opcode::rdrand_r: {
            std::uint64_t value = 0;
            flags_.cf = entropy_.rdrand64(value);
            if (flags_.cf) set(insn.r1, value);
            break;
        }
        case opcode::rdtsc: {
            const std::uint64_t tsc = tsc_base_ + cycles_;
            set(reg::rax, tsc & 0xffffffffull);
            set(reg::rdx, tsc >> 32);
            break;
        }
        case opcode::movq_xr: {
            xmm_value x = get_x(insn.x1);
            x.lo = get(insn.r2);
            x.hi = 0;
            set_x(insn.x1, x);
            break;
        }
        case opcode::movq_rx:
            set(insn.r1, get_x(insn.x2).lo);
            break;
        case opcode::movhps_xm: {
            xmm_value x = get_x(insn.x1);
            if (!ld(effective_address(insn.mem), 8, x.hi, out)) return out;
            set_x(insn.x1, x);
            break;
        }
        case opcode::punpckhqdq_xr: {
            xmm_value x = get_x(insn.x1);
            x.hi = get(insn.r2);
            set_x(insn.x1, x);
            break;
        }
        case opcode::movdqu_mx: {
            const std::uint64_t addr = effective_address(insn.mem);
            const xmm_value x = get_x(insn.x2);
            if (!st(addr, 8, x.lo, out)) return out;
            if (!st(addr + 8, 8, x.hi, out)) return out;
            break;
        }
        case opcode::movdqu_xm: {
            const std::uint64_t addr = effective_address(insn.mem);
            std::uint64_t lo, hi;
            if (!ld(addr, 8, lo, out)) return out;
            if (!ld(addr + 8, 8, hi, out)) return out;
            set_x(insn.x1, {lo, hi});
            break;
        }
        case opcode::cmp128_xm: {
            const std::uint64_t addr = effective_address(insn.mem);
            const xmm_value x = get_x(insn.x1);
            std::uint64_t lo, hi;
            if (!ld(addr, 8, lo, out)) return out;
            if (!ld(addr + 8, 8, hi, out)) return out;
            flags_.zf = x.lo == lo && x.hi == hi;
            break;
        }
        case opcode::syscall_i: {
            const auto number = static_cast<std::uint32_t>(insn.imm);
            switch (static_cast<syscall_no>(number)) {
                case syscall_no::sys_exit:
                    out.status = exec_status::exited;
                    out.exit_code = static_cast<std::int64_t>(get(reg::rdi));
                    return out;
                case syscall_no::sys_getpid:
                    set(reg::rax, pid_);
                    break;
                case syscall_no::sys_write: {
                    const std::uint64_t buf = get(reg::rsi);
                    const std::uint64_t count = get(reg::rdx);
                    const std::uint8_t* p = mem_.try_at(buf, count);
                    if (p == nullptr) {
                        out.status = exec_status::trapped;
                        out.trap = trap_kind::segfault;
                        out.fault_addr = buf;
                        return out;
                    }
                    // Append straight out of guest memory — no temporary —
                    // and stop retaining bytes past the output cap.
                    if (output_.size() < max_output_bytes) {
                        const std::size_t take = std::min<std::size_t>(
                            count, max_output_bytes - output_.size());
                        output_.append(reinterpret_cast<const char*>(p), take);
                    }
                    set(reg::rax, count);
                    break;
                }
                case syscall_no::sys_fork:
                    // Serviced by the process layer: stop with rip already
                    // advanced so both parent and child resume after the
                    // syscall once complete_syscall() fills in rax.
                    rip_ = next_rip;
                    out.status = exec_status::syscalled;
                    out.syscall_number = number;
                    return out;
            }
            break;
        }
        case opcode::trap_abort:
            out.status = exec_status::trapped;
            out.trap = trap_kind::stack_smash;
            out.fault_addr = prog_->addrs[rip_];
            return out;
        case opcode::hlt:
            out.status = exec_status::exited;
            out.exit_code = static_cast<std::int64_t>(get(reg::rax));
            return out;
        case opcode::sim_delay:
            // Cost-model artifact; no architectural effect. Its per-site
            // cycle charge lives in the immediate (the flat table only
            // carries the dbi_tax component).
            cycles_ += insn.imm;
            break;
    }

    rip_ = next_rip;
    out.status = exec_status::running;
    return out;
}

run_result machine::run(std::uint64_t max_steps) {
    if (finished_valid_) return finished_;
    if (!rip_valid_) throw std::logic_error{"machine::run before call_function"};

    cost_table_ = costs_.table();

    run_result out;
    std::uint64_t executed = 0;
    for (;;) {
        if (fuel_ != 0 && steps_ >= fuel_) {
            out.status = exec_status::out_of_fuel;
            break;
        }
        if (max_steps != 0 && executed >= max_steps) {
            out.status = exec_status::running;
            return out;  // resumable: not a terminal state
        }
        if (rip_ >= prog_->insns.size()) {
            out.status = exec_status::trapped;
            out.trap = trap_kind::invalid_jump;
            out.fault_addr = current_address();
            break;
        }
        out = step();
        ++executed;
        if (out.status == exec_status::syscalled) return out;  // resumable
        if (out.status != exec_status::running) break;
    }
    finished_ = out;
    finished_valid_ = true;
    return out;
}

std::uint64_t machine::current_address() const noexcept {
    if (rip_ < prog_->addrs.size()) return prog_->addrs[rip_];
    return 0;
}

void machine::copy_scalars_from(const machine& src) {
    assert(prog_ == src.prog_);
    gpr_ = src.gpr_;
    xmm_ = src.xmm_;
    flags_ = src.flags_;
    fs_base_ = src.fs_base_;
    rip_ = src.rip_;
    rip_valid_ = src.rip_valid_;
    costs_ = src.costs_;
    cost_table_ = src.cost_table_;
    cycles_ = src.cycles_;
    steps_ = src.steps_;
    fuel_ = src.fuel_;
    tsc_base_ = src.tsc_base_;
    entropy_ = src.entropy_;
    pid_ = src.pid_;
    // Skip the copy when already equal: on the per-request fork fast path
    // both sides' output is (almost) always empty, and the fork tail
    // clears the child's output right after anyway.
    if (output_ != src.output_) output_ = src.output_;
    finished_ = src.finished_;
    finished_valid_ = src.finished_valid_;
}

void machine::restore_from(const machine& snap) {
    if (prog_ != snap.prog_)
        throw std::invalid_argument{"machine::restore_from: different program"};
    copy_scalars_from(snap);
    mem_.restore_from(snap.mem_);
}

void machine::sync_from(machine& src) {
    if (prog_ != src.prog_)
        throw std::invalid_argument{"machine::sync_from: different program"};
    copy_scalars_from(src);
    mem_.sync_from(src.mem_);
}

}  // namespace pssp::vm
