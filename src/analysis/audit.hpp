// Rewriter audit mode: runs the canary-protocol prover over a binary
// before and after binary_rewriter::upgrade_to_pssp() and cross-checks the
// rewriter's own accounting against the analyzer's independent view.
//
// Three families of findings:
//   * protocol   — either proof has violations (the upgrade may not break
//     a previously-proven protocol, and must itself prove);
//   * accounting — rewrite_report::skipped_functions must equal, exactly,
//     the analyzer's set of unprotected application functions in the
//     *pre* image; a patched prologue whose epilogue was not patched (or
//     vice versa) is a hard error;
//   * layout     — no symbol, entry, or function size may move
//     (binfmt::layout_preserved; static-mode appends may only extend).
#pragma once

#include <string>
#include <vector>

#include "analysis/canary_proof.hpp"
#include "binfmt/image.hpp"
#include "rewriter/rewriter.hpp"

namespace pssp::analysis {

struct audit_issue {
    std::string function;  // empty for whole-binary issues
    std::string message;
};

struct audit_result {
    proof_result pre;   // proof over the SSP input image
    proof_result post;  // proof over the upgraded image
    rewriter::rewrite_report report;
    std::vector<audit_issue> issues;

    [[nodiscard]] bool clean() const noexcept { return issues.empty(); }
};

// Audits the upgrade of `ssp_binary` (compiled under stock SSP; either
// link mode). Works on a copy — the input is not modified.
[[nodiscard]] audit_result audit_rewrite(const binfmt::linked_binary& ssp_binary);

}  // namespace pssp::analysis
