// Table I: comparison of brute-force-attack defence tools.
//
// Paper row:
//   SSP        — BROP prevention: No;  correct: Yes; overhead: baseline
//   RAF SSP    — Yes; correct: **No**; negligible / negligible
//   DynaGuard  — Yes; Yes; 1.5% (compiler) / 156% (PIN instrumentation)
//   DCR        — Yes; Yes; NA / >24%
//   (P-SSP     — Yes; Yes; 0.24% / 1.01%  — Section VI's result, shown for
//    context in the same format.)
//
// Every cell is *measured* here, not asserted:
//   * BROP prevention — a byte-by-byte campaign against the nginx_m
//     forking server (hijack within budget = "No" prevention);
//   * correctness     — benign requests must survive the worker's return
//     through frames inherited from the master;
//   * overhead        — SPEC-like subset, relative to the SSP build
//     (the paper's stated baseline for these numbers).

#include <functional>
#include <vector>

#include "attack/byte_by_byte.hpp"
#include "bench_util.hpp"
#include "workload/spec.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;
using workload::deployment;

// DBI per-instruction tax modeling DynaGuard's PIN deployment: a typical
// inline-analysis pintool multiplies instruction cost several-fold.
constexpr std::uint64_t pin_tax_cycles = 2;

bool brop_prevented(scheme_kind kind) {
    const auto profile = workload::nginx_profile();
    bench::server_under_test sut{profile, kind, 21};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = 8;
    cfg.max_trials = 3000;  // ~3x the budget that cracks SSP
    attack::byte_by_byte atk{sut.server, cfg};
    const auto campaign =
        atk.run_campaign(sut.binary.symbols.at("win"), sut.binary.data_base);
    return !campaign.hijacked;
}

bool fork_correct(scheme_kind kind) {
    bench::server_under_test sut{workload::nginx_profile(), kind, 22};
    for (int i = 0; i < 4; ++i)
        if (sut.server.serve("GET /").outcome != proc::worker_outcome::ok) return false;
    return true;
}

// Mean overhead vs the SSP build over a SPEC-like subset. The SSP
// baselines are computed once and cached across schemes.
double overhead_vs_ssp(const std::function<workload::run_measurement(
                           const compiler::ir_module&)>& measure) {
    const auto& profiles = workload::spec2006_profiles();
    static std::vector<std::pair<compiler::ir_module, double>> baselines = [&] {
        std::vector<std::pair<compiler::ir_module, double>> out;
        for (std::size_t i = 0; i < profiles.size(); i += 4) {  // every 4th: 7 programs
            auto mod = workload::make_spec_module(profiles[i]);
            const auto base = workload::measure_module(mod, scheme_kind::ssp, {});
            if (base.completed)
                out.emplace_back(std::move(mod), static_cast<double>(base.cycles));
        }
        return out;
    }();
    std::vector<double> overheads;
    for (const auto& [mod, base_cycles] : baselines) {
        const auto m = measure(mod);
        if (!m.completed) continue;
        overheads.push_back(
            util::overhead_percent(base_cycles, static_cast<double>(m.cycles)));
    }
    return util::mean(overheads);
}

double compiler_overhead(scheme_kind kind) {
    return overhead_vs_ssp([kind](const compiler::ir_module& mod) {
        return workload::measure_module(mod, kind, {});
    });
}

}  // namespace

int main() {
    bench::print_header("Table I — comparison of brute-force defence tools",
                        "Table I (+ P-SSP's own row from Section VI)");

    util::text_table table{{"Defence Tool", "BROP Prevention", "Correctness",
                            "Overhead (compiler)", "Overhead (instrumentation)"}};

    // ---- SSP ----
    table.add_row({"SSP", brop_prevented(scheme_kind::ssp) ? "Yes" : "No",
                   fork_correct(scheme_kind::ssp) ? "Yes" : "No", "baseline", "-"});

    // ---- RAF SSP ----
    table.add_row({"RAF SSP", brop_prevented(scheme_kind::raf_ssp) ? "Yes" : "No",
                   fork_correct(scheme_kind::raf_ssp) ? "Yes" : "No",
                   util::fmt_percent(compiler_overhead(scheme_kind::raf_ssp)), "-"});

    // ---- DynaGuard ----
    const double dg_pin = overhead_vs_ssp([](const compiler::ir_module& mod) {
        workload::harness_options opt;
        opt.dep = deployment::pin_dbi;
        opt.dbi_tax_cycles = pin_tax_cycles;
        return workload::measure_module(mod, scheme_kind::dynaguard, opt);
    });
    table.add_row({"DynaGuard", brop_prevented(scheme_kind::dynaguard) ? "Yes" : "No",
                   fork_correct(scheme_kind::dynaguard) ? "Yes" : "No",
                   util::fmt_percent(compiler_overhead(scheme_kind::dynaguard)),
                   util::fmt_percent(dg_pin)});

    // ---- DCR (static instrumentation only) ----
    table.add_row({"DCR", brop_prevented(scheme_kind::dcr) ? "Yes" : "No",
                   fork_correct(scheme_kind::dcr) ? "Yes" : "No", "NA",
                   util::fmt_percent(compiler_overhead(scheme_kind::dcr))});

    // ---- P-SSP ----
    const double pssp_instr = overhead_vs_ssp([](const compiler::ir_module& mod) {
        workload::harness_options opt;
        opt.dep = deployment::instrumented_dynamic;
        return workload::measure_module(mod, scheme_kind::p_ssp32, opt);
    });
    table.add_row({"P-SSP (this paper)", brop_prevented(scheme_kind::p_ssp) ? "Yes" : "No",
                   fork_correct(scheme_kind::p_ssp) ? "Yes" : "No",
                   util::fmt_percent(compiler_overhead(scheme_kind::p_ssp)),
                   util::fmt_percent(pssp_instr)});

    std::printf("%s\n", table.render("Table I — all cells measured").c_str());
    std::printf("paper: SSP No/Yes/-, RAF Yes/No/negligible, DynaGuard Yes/Yes/1.5%%/156%%,\n"
                "       DCR Yes/Yes/NA/>24%%, P-SSP Yes/Yes/0.24%%/1.01%%\n");
    return 0;
}
