#include "attack/brute_force.hpp"

#include <stdexcept>

#include "core/canary.hpp"
#include "util/bytes.hpp"

namespace pssp::attack {

std::vector<std::uint8_t> craft_canary_bytes(core::scheme_kind kind,
                                             std::uint64_t guessed_c,
                                             crypto::xoshiro256& rng,
                                             std::uint32_t dcr_offset) {
    std::vector<std::uint8_t> bytes;
    auto push64 = [&bytes](std::uint64_t v) {
        std::uint8_t w[8];
        util::store_le64(w, v);
        bytes.insert(bytes.end(), w, w + 8);
    };

    switch (kind) {
        case core::scheme_kind::ssp:
        case core::scheme_kind::raf_ssp:
        case core::scheme_kind::dynaguard:
            push64(guessed_c);  // the stack canary IS C
            break;
        case core::scheme_kind::dcr:
            // High half from the guess, low half the (public) link offset.
            push64((guessed_c & 0xffffffff00000000ull) | dcr_offset);
            break;
        case core::scheme_kind::p_ssp:
        case core::scheme_kind::p_ssp_nt: {
            // Any random split consistent with the guess (Section III-C-1):
            // C1 at the lower address, C0 above it.
            const std::uint64_t c0 = rng();
            push64(c0 ^ guessed_c);  // C1 slot (rbp-16)
            push64(c0);              // C0 slot (rbp-8)
            break;
        }
        case core::scheme_kind::p_ssp32: {
            const auto c0 = static_cast<std::uint32_t>(rng());
            const auto c1 = c0 ^ static_cast<std::uint32_t>(guessed_c);
            push64(std::uint64_t{c0} | (std::uint64_t{c1} << 32));
            break;
        }
        case core::scheme_kind::p_ssp_gb:
            // The attacker cannot reach the global buffer; its only move is
            // to guess the *stack* word C0 directly.
            push64(guessed_c);
            break;
        default:
            throw std::invalid_argument{
                "craft_canary_bytes: no byte-crafting model for scheme " +
                core::to_string(kind)};
    }
    return bytes;
}

brute_force_result brute_force::run(std::uint64_t ret_target, std::uint64_t saved_rbp) {
    brute_force_result result;
    if (config_.unknown_bits == 0 || config_.unknown_bits > 63)
        throw std::invalid_argument{"brute_force: unknown_bits must be in [1,63]"};
    const std::uint64_t mask = (std::uint64_t{1} << config_.unknown_bits) - 1;

    while (result.trials < config_.max_trials) {
        const std::uint64_t guess =
            (config_.true_canary_hint & ~mask) | (rng_() & mask);
        std::vector<std::uint8_t> payload(config_.prefix_bytes, 'A');
        const auto canary = craft_canary_bytes(kind_, guess, rng_, config_.dcr_offset);
        payload.insert(payload.end(), canary.begin(), canary.end());
        std::uint8_t w[8];
        util::store_le64(w, saved_rbp);
        payload.insert(payload.end(), w, w + 8);
        util::store_le64(w, ret_target);
        payload.insert(payload.end(), w, w + 8);

        const auto r = oracle_.serve(payload);
        ++result.trials;
        if (r.outcome == proc::worker_outcome::hijacked) {
            result.hijacked = true;
            break;
        }
        if (r.outcome == proc::worker_outcome::crashed_canary)
            ++result.canary_crashes;
    }
    return result;
}

}  // namespace pssp::attack
