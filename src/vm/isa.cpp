#include "vm/isa.hpp"

#include <array>
#include <sstream>

namespace pssp::vm {

namespace {

// REX.B/R is required whenever r8..r15 participates, adding one byte —
// this is why `push %r12` is 2 bytes while `push %rbp` is 1.
[[nodiscard]] bool is_extended(reg r) noexcept {
    return r >= reg::r8 && r <= reg::r15;
}

// Displacement encoding: 0 bytes when disp == 0 with a plain base,
// 1 byte for disp8, else 4 bytes. rbp-based always needs at least disp8.
[[nodiscard]] std::size_t disp_bytes(const mem_operand& m) noexcept {
    if (m.base == reg::none) return 4;  // absolute: disp32
    if (m.disp == 0 && m.base != reg::rbp) return 0;
    if (m.disp >= -128 && m.disp <= 127) return 1;
    return 4;
}

// Common length of a reg<->mem operation: opcode + modrm + REX.W (64-bit)
// + optional segment prefix + displacement.
[[nodiscard]] std::size_t rm_length(const instruction& insn, std::size_t opcode_bytes,
                                    bool rex_w) noexcept {
    std::size_t len = opcode_bytes + 1 /*modrm*/ + disp_bytes(insn.mem);
    if (rex_w || is_extended(insn.r1) || is_extended(insn.r2) ||
        is_extended(insn.mem.base))
        len += 1;
    if (insn.mem.seg == segment::fs) len += 1;
    return len;
}

}  // namespace

std::size_t encoded_length(const instruction& insn) noexcept {
    switch (insn.op) {
        case opcode::nop:
            return 1;
        case opcode::push_r:
        case opcode::pop_r:
            return is_extended(insn.r1) ? 2 : 1;
        case opcode::push_i:
            return 5;  // 68 id
        case opcode::mov_rr:
        case opcode::add_rr:
        case opcode::sub_rr:
        case opcode::xor_rr:
        case opcode::or_rr:
        case opcode::cmp_rr:
        case opcode::test_rr:
            return 3;  // REX.W + opcode + modrm
        case opcode::imul_rr:
            return 4;  // REX.W 0F AF /r
        case opcode::mov_ri:
            return 10;  // REX.W B8+rd io (movabs)
        case opcode::add_ri:
        case opcode::sub_ri:
        case opcode::xor_ri:
        case opcode::and_ri:
        case opcode::cmp_ri:
        case opcode::imul_ri:
            return 7;  // REX.W 81 /n id
        case opcode::shl_ri:
        case opcode::shr_ri:
            return 4;  // REX.W C1 /n ib
        case opcode::mov_rm:
        case opcode::mov_mr:
            return rm_length(insn, 1, true);
        case opcode::mov_mi:
            return rm_length(insn, 1, true) + 4;  // + imm32
        case opcode::mov32_rm:
        case opcode::mov32_mr:
            return rm_length(insn, 1, false);
        case opcode::movzx8_rm:
            return rm_length(insn, 2, true);  // 0F B6
        case opcode::mov8_mr:
            return rm_length(insn, 1, false);
        case opcode::lea:
            return rm_length(insn, 1, true);
        case opcode::xor_rm:
        case opcode::cmp_rm:
            return rm_length(insn, 1, true);
        case opcode::je:
        case opcode::jne:
        case opcode::jb:
        case opcode::jae:
        case opcode::jl:
        case opcode::jge:
        case opcode::jnc:
            return 6;  // 0F 8x rel32 (near form; we always use near)
        case opcode::jmp:
            return 5;  // E9 rel32
        case opcode::call:
            return 5;  // E8 rel32
        case opcode::ret:
            return 1;
        case opcode::leave:
            return 1;
        case opcode::rdrand_r:
            return is_extended(insn.r1) ? 5 : 4;  // REX.W 0F C7 /6
        case opcode::rdtsc:
            return 2;  // 0F 31
        case opcode::movq_xr:
        case opcode::movq_rx:
            return 5;  // 66 REX.W 0F 6E/7E /r
        case opcode::movhps_xm:
            return 4 + disp_bytes(insn.mem);
        case opcode::punpckhqdq_xr:
            return 5;
        case opcode::movdqu_mx:
        case opcode::movdqu_xm:
            return 4 + disp_bytes(insn.mem);
        case opcode::cmp128_xm:
            return 4 + disp_bytes(insn.mem);
        case opcode::syscall_i:
            return 2 + 5;  // mov eax, imm32 (folded) + 0F 05
        case opcode::trap_abort:
            return 2;  // 0F 0B (ud2)
        case opcode::hlt:
            return 1;
        case opcode::sim_delay:
            return 5;  // the patched jmp-to-trampoline
    }
    return 1;
}

std::string reg_name(reg r) {
    static constexpr std::array<const char*, 16> names = {
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
    if (r == reg::none) return "<none>";
    return names[static_cast<std::size_t>(r)];
}

namespace {

[[nodiscard]] std::string xreg_name(xreg x) {
    if (x == xreg::none) return "<none>";
    return "xmm" + std::to_string(static_cast<int>(x));
}

[[nodiscard]] std::string mem_str(const mem_operand& m) {
    std::ostringstream out;
    if (m.seg == segment::fs) out << "%fs:";
    out << std::showpos << m.disp << std::noshowpos;
    if (m.base != reg::none) out << "(%" << reg_name(m.base) << ")";
    return out.str();
}

[[nodiscard]] std::string addr_str(std::uint64_t addr) {
    std::ostringstream out;
    out << "0x" << std::hex << addr;
    return out.str();
}

// Jump/call operand: local label before assembly, absolute address after.
[[nodiscard]] std::string target_str(const instruction& i) {
    if (i.label != no_id) return "L" + std::to_string(i.label);
    if (i.sym != no_id) return "sym" + std::to_string(i.sym);
    return addr_str(i.imm);
}

}  // namespace

std::string to_string(const instruction& i) {
    std::ostringstream out;
    auto r = [](reg x) { return "%" + reg_name(x); };
    switch (i.op) {
        case opcode::nop: out << "nop"; break;
        case opcode::push_r: out << "push " << r(i.r1); break;
        case opcode::push_i: out << "push $" << static_cast<std::int64_t>(i.imm); break;
        case opcode::pop_r: out << "pop " << r(i.r1); break;
        case opcode::mov_rr: out << "mov " << r(i.r2) << "," << r(i.r1); break;
        case opcode::mov_ri: out << "movabs $0x" << std::hex << i.imm << std::dec << "," << r(i.r1); break;
        case opcode::mov_rm: out << "mov " << mem_str(i.mem) << "," << r(i.r1); break;
        case opcode::mov_mr: out << "mov " << r(i.r2) << "," << mem_str(i.mem); break;
        case opcode::mov_mi: out << "movq $" << static_cast<std::int64_t>(i.imm) << "," << mem_str(i.mem); break;
        case opcode::mov32_rm: out << "movl " << mem_str(i.mem) << "," << r(i.r1); break;
        case opcode::mov32_mr: out << "movl " << r(i.r2) << "," << mem_str(i.mem); break;
        case opcode::movzx8_rm: out << "movzbq " << mem_str(i.mem) << "," << r(i.r1); break;
        case opcode::mov8_mr: out << "movb " << r(i.r2) << "," << mem_str(i.mem); break;
        case opcode::lea: out << "lea " << mem_str(i.mem) << "," << r(i.r1); break;
        case opcode::add_rr: out << "add " << r(i.r2) << "," << r(i.r1); break;
        case opcode::add_ri: out << "add $" << static_cast<std::int64_t>(i.imm) << "," << r(i.r1); break;
        case opcode::sub_rr: out << "sub " << r(i.r2) << "," << r(i.r1); break;
        case opcode::sub_ri: out << "sub $" << static_cast<std::int64_t>(i.imm) << "," << r(i.r1); break;
        case opcode::xor_rr: out << "xor " << r(i.r2) << "," << r(i.r1); break;
        case opcode::xor_ri: out << "xor $" << static_cast<std::int64_t>(i.imm) << "," << r(i.r1); break;
        case opcode::xor_rm: out << "xor " << mem_str(i.mem) << "," << r(i.r1); break;
        case opcode::or_rr: out << "or " << r(i.r2) << "," << r(i.r1); break;
        case opcode::and_ri: out << "and $" << static_cast<std::int64_t>(i.imm) << "," << r(i.r1); break;
        case opcode::shl_ri: out << "shl $" << i.imm << "," << r(i.r1); break;
        case opcode::shr_ri: out << "shr $" << i.imm << "," << r(i.r1); break;
        case opcode::imul_rr: out << "imul " << r(i.r2) << "," << r(i.r1); break;
        case opcode::imul_ri: out << "imul $" << static_cast<std::int64_t>(i.imm) << "," << r(i.r1); break;
        case opcode::cmp_rr: out << "cmp " << r(i.r2) << "," << r(i.r1); break;
        case opcode::cmp_ri: out << "cmp $" << static_cast<std::int64_t>(i.imm) << "," << r(i.r1); break;
        case opcode::cmp_rm: out << "cmp " << mem_str(i.mem) << "," << r(i.r1); break;
        case opcode::test_rr: out << "test " << r(i.r2) << "," << r(i.r1); break;
        case opcode::je: out << "je " << target_str(i); break;
        case opcode::jne: out << "jne " << target_str(i); break;
        case opcode::jb: out << "jb " << target_str(i); break;
        case opcode::jae: out << "jae " << target_str(i); break;
        case opcode::jl: out << "jl " << target_str(i); break;
        case opcode::jge: out << "jge " << target_str(i); break;
        case opcode::jnc: out << "jnc " << target_str(i); break;
        case opcode::jmp: out << "jmp " << target_str(i); break;
        case opcode::call: out << "callq " << target_str(i); break;
        case opcode::ret: out << "retq"; break;
        case opcode::leave: out << "leaveq"; break;
        case opcode::rdrand_r: out << "rdrand " << r(i.r1); break;
        case opcode::rdtsc: out << "rdtsc"; break;
        case opcode::movq_xr: out << "movq " << r(i.r2) << ",%" << xreg_name(i.x1); break;
        case opcode::movq_rx: out << "movq %" << xreg_name(i.x2) << "," << r(i.r1); break;
        case opcode::movhps_xm: out << "movhps " << mem_str(i.mem) << ",%" << xreg_name(i.x1); break;
        case opcode::punpckhqdq_xr: out << "punpckhqdq " << r(i.r2) << ",%" << xreg_name(i.x1); break;
        case opcode::movdqu_mx: out << "movdqu %" << xreg_name(i.x2) << "," << mem_str(i.mem); break;
        case opcode::movdqu_xm: out << "movdqu " << mem_str(i.mem) << ",%" << xreg_name(i.x1); break;
        case opcode::cmp128_xm: out << "cmp128 " << mem_str(i.mem) << ",%" << xreg_name(i.x1); break;
        case opcode::syscall_i: out << "syscall $" << i.imm; break;
        case opcode::trap_abort: out << "ud2 (abort)"; break;
        case opcode::hlt: out << "hlt"; break;
        case opcode::sim_delay: out << "sim_delay $" << i.imm; break;
    }
    return out.str();
}

namespace isa {

mem_operand mem(reg base, std::int32_t disp) { return {base, disp, segment::none}; }
mem_operand fs(std::int32_t disp) { return {reg::none, disp, segment::fs}; }

namespace {
instruction make(opcode op) {
    instruction i;
    i.op = op;
    return i;
}
}  // namespace

instruction nop() { return make(opcode::nop); }

instruction push_r(reg r) {
    auto i = make(opcode::push_r);
    i.r1 = r;
    return i;
}

instruction push_i(std::int32_t v) {
    auto i = make(opcode::push_i);
    i.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    return i;
}

instruction pop_r(reg r) {
    auto i = make(opcode::pop_r);
    i.r1 = r;
    return i;
}

instruction mov_rr(reg dst, reg src) {
    auto i = make(opcode::mov_rr);
    i.r1 = dst;
    i.r2 = src;
    return i;
}

instruction mov_ri(reg dst, std::uint64_t v) {
    auto i = make(opcode::mov_ri);
    i.r1 = dst;
    i.imm = v;
    return i;
}

instruction mov_rm(reg dst, mem_operand m) {
    auto i = make(opcode::mov_rm);
    i.r1 = dst;
    i.mem = m;
    return i;
}

instruction mov_mr(mem_operand m, reg src) {
    auto i = make(opcode::mov_mr);
    i.r2 = src;
    i.mem = m;
    return i;
}

instruction mov_mi(mem_operand m, std::int32_t v) {
    auto i = make(opcode::mov_mi);
    i.mem = m;
    i.imm = static_cast<std::uint64_t>(static_cast<std::int64_t>(v));
    return i;
}

instruction mov32_rm(reg dst, mem_operand m) {
    auto i = make(opcode::mov32_rm);
    i.r1 = dst;
    i.mem = m;
    return i;
}

instruction mov32_mr(mem_operand m, reg src) {
    auto i = make(opcode::mov32_mr);
    i.r2 = src;
    i.mem = m;
    return i;
}

instruction movzx8_rm(reg dst, mem_operand m) {
    auto i = make(opcode::movzx8_rm);
    i.r1 = dst;
    i.mem = m;
    return i;
}

instruction mov8_mr(mem_operand m, reg src) {
    auto i = make(opcode::mov8_mr);
    i.r2 = src;
    i.mem = m;
    return i;
}

instruction lea(reg dst, mem_operand m) {
    auto i = make(opcode::lea);
    i.r1 = dst;
    i.mem = m;
    return i;
}

namespace {
instruction alu_rr(opcode op, reg dst, reg src) {
    instruction i;
    i.op = op;
    i.r1 = dst;
    i.r2 = src;
    return i;
}
instruction alu_ri(opcode op, reg dst, std::int64_t v) {
    instruction i;
    i.op = op;
    i.r1 = dst;
    i.imm = static_cast<std::uint64_t>(v);
    return i;
}
}  // namespace

instruction add_rr(reg dst, reg src) { return alu_rr(opcode::add_rr, dst, src); }
instruction add_ri(reg dst, std::int32_t v) { return alu_ri(opcode::add_ri, dst, v); }
instruction sub_rr(reg dst, reg src) { return alu_rr(opcode::sub_rr, dst, src); }
instruction sub_ri(reg dst, std::int32_t v) { return alu_ri(opcode::sub_ri, dst, v); }
instruction xor_rr(reg dst, reg src) { return alu_rr(opcode::xor_rr, dst, src); }
instruction xor_ri(reg dst, std::int32_t v) { return alu_ri(opcode::xor_ri, dst, v); }

instruction xor_rm(reg dst, mem_operand m) {
    auto i = make(opcode::xor_rm);
    i.r1 = dst;
    i.mem = m;
    return i;
}

instruction or_rr(reg dst, reg src) { return alu_rr(opcode::or_rr, dst, src); }
instruction and_ri(reg dst, std::int32_t v) { return alu_ri(opcode::and_ri, dst, v); }
instruction shl_ri(reg dst, std::uint8_t bits) { return alu_ri(opcode::shl_ri, dst, bits); }
instruction shr_ri(reg dst, std::uint8_t bits) { return alu_ri(opcode::shr_ri, dst, bits); }
instruction imul_rr(reg dst, reg src) { return alu_rr(opcode::imul_rr, dst, src); }
instruction imul_ri(reg dst, std::int32_t v) { return alu_ri(opcode::imul_ri, dst, v); }
instruction cmp_rr(reg a, reg b) { return alu_rr(opcode::cmp_rr, a, b); }
instruction cmp_ri(reg a, std::int32_t v) { return alu_ri(opcode::cmp_ri, a, v); }

instruction cmp_rm(reg a, mem_operand m) {
    auto i = make(opcode::cmp_rm);
    i.r1 = a;
    i.mem = m;
    return i;
}

instruction test_rr(reg a, reg b) { return alu_rr(opcode::test_rr, a, b); }

namespace {
instruction jump(opcode op, std::uint32_t label) {
    instruction i;
    i.op = op;
    i.label = label;
    return i;
}
}  // namespace

instruction je(std::uint32_t label) { return jump(opcode::je, label); }
instruction jne(std::uint32_t label) { return jump(opcode::jne, label); }
instruction jb(std::uint32_t label) { return jump(opcode::jb, label); }
instruction jae(std::uint32_t label) { return jump(opcode::jae, label); }
instruction jl(std::uint32_t label) { return jump(opcode::jl, label); }
instruction jge(std::uint32_t label) { return jump(opcode::jge, label); }
instruction jnc(std::uint32_t label) { return jump(opcode::jnc, label); }
instruction jmp(std::uint32_t label) { return jump(opcode::jmp, label); }

instruction call_sym(std::uint32_t sym) {
    auto i = make(opcode::call);
    i.sym = sym;
    return i;
}

instruction ret() { return make(opcode::ret); }
instruction leave() { return make(opcode::leave); }

instruction rdrand(reg dst) {
    auto i = make(opcode::rdrand_r);
    i.r1 = dst;
    return i;
}

instruction rdtsc() { return make(opcode::rdtsc); }

instruction movq_xr(xreg dst, reg src) {
    auto i = make(opcode::movq_xr);
    i.x1 = dst;
    i.r2 = src;
    return i;
}

instruction movq_rx(reg dst, xreg src) {
    auto i = make(opcode::movq_rx);
    i.r1 = dst;
    i.x2 = src;
    return i;
}

instruction movhps_xm(xreg dst, mem_operand m) {
    auto i = make(opcode::movhps_xm);
    i.x1 = dst;
    i.mem = m;
    return i;
}

instruction punpckhqdq_xr(xreg dst, reg src) {
    auto i = make(opcode::punpckhqdq_xr);
    i.x1 = dst;
    i.r2 = src;
    return i;
}

instruction movdqu_mx(mem_operand m, xreg src) {
    auto i = make(opcode::movdqu_mx);
    i.x2 = src;
    i.mem = m;
    return i;
}

instruction movdqu_xm(xreg dst, mem_operand m) {
    auto i = make(opcode::movdqu_xm);
    i.x1 = dst;
    i.mem = m;
    return i;
}

instruction cmp128_xm(xreg a, mem_operand m) {
    auto i = make(opcode::cmp128_xm);
    i.x1 = a;
    i.mem = m;
    return i;
}

instruction syscall_i(std::uint32_t number) {
    auto i = make(opcode::syscall_i);
    i.imm = number;
    return i;
}

instruction trap_abort() { return make(opcode::trap_abort); }
instruction hlt() { return make(opcode::hlt); }

instruction sim_delay(std::uint32_t cycles) {
    auto i = make(opcode::sim_delay);
    i.imm = cycles;
    return i;
}

}  // namespace isa

}  // namespace pssp::vm
