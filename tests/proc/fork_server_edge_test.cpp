// fork_server edge cases: configuration errors, capacity clamping, crash
// bookkeeping, and oracle stability across long campaigns.

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "proc/fork_server.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

binfmt::linked_binary nginx_binary(scheme_kind kind) {
    return compiler::build_module(
        workload::make_server_module(workload::nginx_profile()),
        core::make_scheme(kind));
}

TEST(fork_server_edge, rejects_binary_without_request_symbol) {
    compiler::ir_module mod;
    mod.name = "noserver";
    auto& fn = mod.add_function("server_main");
    fn.body.push_back(compiler::return_stmt{});
    const auto binary = compiler::build_module(mod, core::make_scheme(scheme_kind::ssp));
    EXPECT_THROW(
        (proc::fork_server{binary, core::make_scheme(scheme_kind::ssp), 1, {}}),
        std::invalid_argument);
}

TEST(fork_server_edge, rejects_master_that_never_forks) {
    compiler::ir_module mod;
    mod.name = "noforks";
    mod.add_global("g_request", 128);
    auto& fn = mod.add_function("server_main");
    fn.body.push_back(compiler::return_stmt{});  // exits immediately
    const auto binary = compiler::build_module(mod, core::make_scheme(scheme_kind::ssp));
    EXPECT_THROW(
        (proc::fork_server{binary, core::make_scheme(scheme_kind::ssp), 1, {}}),
        std::runtime_error);
}

TEST(fork_server_edge, oversized_requests_are_clamped_to_capacity) {
    const auto binary = nginx_binary(scheme_kind::none);
    proc::server_config cfg = workload::server_config_for(workload::nginx_profile());
    cfg.request_capacity = 256;
    proc::fork_server server{binary, core::make_scheme(scheme_kind::none), 2, cfg};
    // 10k bytes arrive; only capacity-1 may be copied into the buffer
    // region (no fault in the *server's* delivery path).
    const auto r = server.serve(std::vector<std::uint8_t>(10'000, 'z'));
    // The clamped 255-byte copy still overflows the handler's 64-byte
    // buffer: an unprotected build crashes in its own way, but the
    // delivery itself must not throw.
    EXPECT_NE(r.outcome, proc::worker_outcome::hijacked);
}

TEST(fork_server_edge, counts_requests_and_crashes) {
    const auto binary = nginx_binary(scheme_kind::ssp);
    proc::fork_server server{binary, core::make_scheme(scheme_kind::ssp), 3,
                             workload::server_config_for(workload::nginx_profile())};
    (void)server.serve("ok");
    (void)server.serve(std::vector<std::uint8_t>(200, 'A'));  // smash
    (void)server.serve("ok again");
    EXPECT_EQ(server.requests(), 3u);
    EXPECT_EQ(server.crashes(), 1u);
}

TEST(fork_server_edge, workers_get_fresh_pids) {
    const auto binary = nginx_binary(scheme_kind::p_ssp);
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp), 4,
                             workload::server_config_for(workload::nginx_profile())};
    // pids are internal, but output isolation is observable: each worker's
    // response is independent (no accumulation across workers).
    const auto a = server.serve("one");
    const auto b = server.serve("two");
    EXPECT_EQ(a.output.size(), b.output.size());
}

TEST(fork_server_edge, survives_a_thousand_request_campaign) {
    const auto binary = nginx_binary(scheme_kind::p_ssp);
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp), 5,
                             workload::server_config_for(workload::nginx_profile())};
    for (int i = 0; i < 1000; ++i) {
        const bool attack = i % 3 == 0;
        const auto r = attack ? server.serve(std::vector<std::uint8_t>(150, 'A'))
                              : server.serve("GET /");
        if (attack)
            EXPECT_EQ(r.outcome, proc::worker_outcome::crashed_canary) << i;
        else
            EXPECT_EQ(r.outcome, proc::worker_outcome::ok) << i;
    }
    EXPECT_TRUE(server.alive());
    EXPECT_EQ(server.requests(), 1000u);
}

TEST(fork_server_edge, master_tls_is_never_perturbed_by_workers) {
    const auto binary = nginx_binary(scheme_kind::p_ssp);
    proc::fork_server server{binary, core::make_scheme(scheme_kind::p_ssp), 6,
                             workload::server_config_for(workload::nginx_profile())};
    const auto tls_before = server.master().mem().tls_bytes();
    const std::vector<std::uint8_t> snapshot{tls_before.begin(), tls_before.end()};
    for (int i = 0; i < 20; ++i) (void)server.serve("req");
    const auto tls_after = server.master().mem().tls_bytes();
    EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), tls_after.begin()));
}

}  // namespace
}  // namespace pssp
