// Differential stepper oracle: randomized programs (seeded splitmix64)
// executed instruction-by-instruction via the public step() — the legacy
// switch engine — against one batched threaded run(), asserting identical
// registers, flags, memory digest, cycles, steps, and trap/fault state at
// every event boundary. This is the broad-spectrum check behind the
// dispatch-mode contract: whatever instruction soup the generator cooks
// up (including wild loads, runaway loops and clobbered return
// addresses), both engines must tell exactly the same story.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "binfmt/image.hpp"
#include "crypto/prng.hpp"
#include "vm/machine.hpp"
#include "vm/random_program.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::machine;
using vm::reg;

// FNV-1a over the three memory regions — cheap, and any divergence in any
// byte of simulated memory changes it.
std::uint64_t memory_digest(const machine& m) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::span<const std::uint8_t> bytes) {
        for (const std::uint8_t b : bytes) {
            h ^= b;
            h *= 1099511628211ull;
        }
    };
    mix(m.mem().stack_bytes());
    mix(m.mem().globals_bytes());
    mix(m.mem().tls_bytes());
    return h;
}

struct boundary_state {
    vm::run_result result;
    std::uint64_t cycles = 0;
    std::uint64_t steps = 0;
    std::uint64_t address = 0;
    std::uint64_t digest = 0;
    std::array<std::uint64_t, vm::gpr_count> gpr{};
    vm::flags_state flags{};
    std::string output;
};

boundary_state capture(machine& m, const vm::run_result& r) {
    boundary_state s;
    s.result = r;
    s.cycles = m.cycles();
    s.steps = m.steps();
    s.address = m.current_address();
    s.digest = memory_digest(m);
    for (std::size_t i = 0; i < vm::gpr_count; ++i)
        s.gpr[i] = m.get(static_cast<reg>(i));
    s.flags = m.flags();
    s.output = m.output();
    return s;
}

void expect_same(const boundary_state& a, const boundary_state& b,
                 std::uint64_t seed, const char* where) {
    EXPECT_EQ(a.result.status, b.result.status) << where << " seed " << seed;
    EXPECT_EQ(a.result.trap, b.result.trap) << where << " seed " << seed;
    EXPECT_EQ(a.result.exit_code, b.result.exit_code) << where << " seed " << seed;
    EXPECT_EQ(a.result.syscall_number, b.result.syscall_number)
        << where << " seed " << seed;
    EXPECT_EQ(a.result.fault_addr, b.result.fault_addr) << where << " seed " << seed;
    EXPECT_EQ(a.cycles, b.cycles) << where << " seed " << seed;
    EXPECT_EQ(a.steps, b.steps) << where << " seed " << seed;
    EXPECT_EQ(a.address, b.address) << where << " seed " << seed;
    EXPECT_EQ(a.digest, b.digest) << where << " seed " << seed;
    EXPECT_EQ(a.gpr, b.gpr) << where << " seed " << seed;
    EXPECT_EQ(a.flags.zf, b.flags.zf) << where << " seed " << seed;
    EXPECT_EQ(a.flags.cf, b.flags.cf) << where << " seed " << seed;
    EXPECT_EQ(a.flags.lt_signed, b.flags.lt_signed) << where << " seed " << seed;
    EXPECT_EQ(a.flags.lt_unsigned, b.flags.lt_unsigned)
        << where << " seed " << seed;
    EXPECT_EQ(a.output, b.output) << where << " seed " << seed;
}

// Drives one generated program through both engines. The stepper side
// advances one instruction per step() call; every non-`running` return is
// an event boundary, which must match the threaded side's next event.
void run_differential(std::uint64_t seed) {
    auto img = testing::random_image(seed, /*body_len=*/60);
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();

    constexpr std::uint64_t fuel = 3000;
    machine threaded{prog, vm::memory::layout{}, /*entropy_seed=*/seed};
    threaded.set_dispatch(vm::dispatch_mode::threaded);
    machine stepper{prog, vm::memory::layout{}, /*entropy_seed=*/seed};
    stepper.set_dispatch(vm::dispatch_mode::switch_loop);
    for (machine* m : {&threaded, &stepper}) {
        m->set(reg::rdi, 5);
        m->set(reg::rsi, 9);
        m->call_function(binary.symbols.at("f"));
        m->set_fuel(fuel);
    }

    // Up to a handful of events (syscall pauses resume with the same rax).
    for (int event = 0; event < 8; ++event) {
        const auto tr = threaded.run();
        vm::run_result sr;
        do {
            sr = stepper.step();
        } while (sr.status == vm::exec_status::running &&
                 stepper.steps() < fuel + 1);
        expect_same(capture(threaded, tr), capture(stepper, sr), seed, "event");
        if (tr.status != vm::exec_status::syscalled) return;
        threaded.complete_syscall(7);
        stepper.complete_syscall(7);
    }
}

TEST(differential, randomized_programs_agree_at_every_event_boundary) {
    // 40 seeds x ~60-instruction bodies: every generated program must
    // produce identical observable state under both engines at every
    // event. On failure the seed is printed for replay.
    for (std::uint64_t seed = 1; seed <= 40; ++seed) run_differential(seed);
}

TEST(differential, deep_spinner_agrees_including_out_of_fuel_timing) {
    // A long-running loop: the threaded engine's batched fuel accounting
    // must stop on exactly the same step as the per-instruction check.
    binfmt::image img;
    auto& f = img.add_function("f");
    const auto loop = f.new_label();
    f.emit(mov_ri(reg::rdi, 1'000'000));
    f.place(loop);
    f.emit({sub_ri(reg::rdi, 1), cmp_ri(reg::rdi, 0), jne(loop), ret()});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();

    for (const std::uint64_t fuel : {1000ull, 1001ull, 1002ull, 1003ull}) {
        machine threaded{prog, vm::memory::layout{}, 1};
        threaded.set_dispatch(vm::dispatch_mode::threaded);
        machine stepper{prog, vm::memory::layout{}, 1};
        stepper.set_dispatch(vm::dispatch_mode::switch_loop);
        for (machine* m : {&threaded, &stepper}) {
            m->call_function(binary.symbols.at("f"));
            m->set_fuel(fuel);
        }
        const auto tr = threaded.run();
        const auto sr = stepper.run();
        ASSERT_EQ(tr.status, vm::exec_status::out_of_fuel) << "fuel " << fuel;
        expect_same(capture(threaded, tr), capture(stepper, sr), fuel, "fuel");
    }
}

TEST(differential, bounded_run_pauses_match_across_engines) {
    // run(max_steps) pauses are resumable mid-fused-pair; state at every
    // pause must match a stepper driven the same number of steps.
    binfmt::image img;
    auto& f = img.add_function("f");
    const auto out = f.new_label();
    f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32),
            mov_ri(reg::rax, 0), mov_mr(mem(reg::rbp, -8), reg::rax),
            mov_rm(reg::rcx, mem(reg::rbp, -8)), add_rr(reg::rax, reg::rcx),
            cmp_ri(reg::rax, 0), je(out)});
    f.place(out);
    f.emit({leave(), ret()});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto prog = binary.make_program();

    machine threaded{prog, vm::memory::layout{}, 1};
    threaded.set_dispatch(vm::dispatch_mode::threaded);
    machine stepper{prog, vm::memory::layout{}, 1};
    stepper.set_dispatch(vm::dispatch_mode::switch_loop);
    for (machine* m : {&threaded, &stepper}) {
        m->call_function(binary.symbols.at("f"));
        m->set_fuel(1000);
    }
    for (int pause = 0; pause < 16; ++pause) {
        const auto tr = threaded.run(1);
        const auto sr = stepper.step();
        expect_same(capture(threaded, tr), capture(stepper, sr), pause, "pause");
        if (tr.status != vm::exec_status::running) break;
    }
}

}  // namespace
}  // namespace pssp
