// Crash-resumable campaign checkpoints.
//
// A checkpoint directory makes a sharded campaign resumable after the
// orchestrator itself dies (SIGKILL, OOM, power loss): merged block
// partials are persisted incrementally as they are validated, and a
// `--resume` run replays them instead of re-running the work. Layout:
//
//   <dir>/meta.json    written once at creation (tmp + rename, fsync):
//                      the checkpoint format version and the spec digest.
//                      Resume refuses a directory whose digest does not
//                      match the running spec — a checkpoint can never be
//                      silently merged into a different campaign.
//   <dir>/rounds.log   append-only JSONL, one entry per durable unit of
//                      progress (one adaptive round, or one fixed-run
//                      shard job). Each line carries its own FNV-1a 64
//                      integrity hash over the entry body:
//
//                        {"ckpt":{"round":N,"blocks":[...]},"fnv":"<16hex>"}
//
//                      Blocks are the exact hexfloat wire encoding
//                      (dist::append_partial_block), so a replayed block
//                      is bit-identical to the one the shard emitted.
//   <dir>/state.json   small informational summary (tmp + rename), for
//                      humans and dashboards; never read on resume.
//
// Durability: each append writes one complete line with a trailing
// newline and fsyncs the log fd before reporting the round durable, so
// an orchestrator killed *between* rounds always leaves a clean log.
// Resume is strict on purpose: a truncated line, a structurally broken
// entry, or an entry failing its integrity hash (a single flipped
// hexfloat digit trips it) throws with the file and 1-based line number.
// Silent resume from corrupt state is impossible — a damaged checkpoint
// must be deleted explicitly, never quietly half-trusted.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dist/wire.hpp"

namespace pssp::dist {

inline constexpr std::uint32_t checkpoint_version = 1;

// One durable unit of replayed progress.
struct checkpoint_entry {
    std::uint64_t round = 0;
    std::vector<partial_block> blocks;
};

class checkpoint_log {
  public:
    // Starts a fresh checkpoint: creates <dir> if needed, refuses a
    // directory that already holds a checkpoint (resume must be explicit),
    // writes meta.json atomically, opens rounds.log for appending.
    [[nodiscard]] static checkpoint_log create(const std::string& dir,
                                               std::uint64_t digest);

    // Opens an existing checkpoint for resume: validates meta.json
    // (version + spec digest), replays rounds.log verifying every line's
    // structure and integrity hash, keeps the entries for the caller, and
    // reopens the log for appending. Throws std::runtime_error naming the
    // file and 1-based line of any corruption.
    [[nodiscard]] static checkpoint_log open_for_resume(const std::string& dir,
                                                        std::uint64_t digest);

    checkpoint_log(checkpoint_log&& other) noexcept;
    checkpoint_log& operator=(checkpoint_log&&) = delete;
    checkpoint_log(const checkpoint_log&) = delete;
    ~checkpoint_log();

    // Entries replayed by open_for_resume (empty for create()).
    [[nodiscard]] const std::vector<checkpoint_entry>& recorded() const noexcept {
        return entries_;
    }

    // Durably appends one entry: one hashed JSONL line + fsync, then a
    // tmp+rename state.json refresh. The blocks are persisted in the
    // given order (callers pass manifest order).
    void append(std::uint64_t round, std::span<const partial_block> blocks);

    [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

  private:
    checkpoint_log(std::string dir, std::uint64_t digest, int log_fd);

    void write_state() const;

    std::string dir_;
    std::uint64_t digest_ = 0;
    int log_fd_ = -1;
    std::uint64_t appended_rounds_ = 0;   // entries written (incl. replayed)
    std::uint64_t appended_blocks_ = 0;
    std::vector<checkpoint_entry> entries_;
};

}  // namespace pssp::dist
