// The network framing layer, adversarially: every way a TCP stream can
// arrive broken — dribbled one byte at a time, split by EINTR/short
// reads, truncated mid-frame, garbled in flight, or led by a scrambled
// length prefix — must either reassemble to the exact frames sent or
// fail with the exact pinned error message. The coordinator's
// partition-tolerance story rests on these errors being loud and
// classified, never silent corruption.

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dist/frame.hpp"

namespace pssp {
namespace {

// A connected non-blocking socketpair; index 0 is "ours", 1 is "theirs".
struct pair_fds {
    int fd[2];
    pair_fds() {
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0);
        for (int k : {fd[0], fd[1]})
            EXPECT_EQ(::fcntl(k, F_SETFL, O_NONBLOCK), 0);
    }
    ~pair_fds() {
        // fd[0] is owned by a frame_conn in most tests; fd[1] by us.
        if (fd[1] >= 0) ::close(fd[1]);
    }
    void close_theirs() {
        ::close(fd[1]);
        fd[1] = -1;
    }
    void send_raw(const std::string& bytes) {
        ASSERT_EQ(::write(fd[1], bytes.data(), bytes.size()),
                  static_cast<ssize_t>(bytes.size()));
    }
};

TEST(dist_frame, roundtrips_every_type_through_encode_and_reader) {
    dist::frame_reader reader;
    const std::string payloads[] = {"", "x", std::string(100000, 'q')};
    for (const auto& p : payloads) {
        const auto wire = dist::encode_frame(dist::frame_type::lease, p);
        reader.feed(wire.data(), wire.size());
        const auto f = reader.next();
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(f->type, dist::frame_type::lease);
        EXPECT_EQ(f->payload, p);
    }
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(dist_frame, reassembles_from_one_byte_dribble) {
    // The worst fragmentation a short-read/EINTR-split stream can
    // produce: every byte arrives alone. The decoded frames must be
    // exactly the ones sent, in order.
    std::string wire;
    wire += dist::encode_frame(dist::frame_type::heartbeat, "");
    wire += dist::encode_frame(dist::frame_type::result, "partial {json}");
    wire += dist::encode_frame(dist::frame_type::shutdown, "bye");
    dist::frame_reader reader;
    std::vector<dist::frame> got;
    for (char byte : wire) {
        reader.feed(&byte, 1);
        while (auto f = reader.next()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].type, dist::frame_type::heartbeat);
    EXPECT_EQ(got[1].payload, "partial {json}");
    EXPECT_EQ(got[2].type, dist::frame_type::shutdown);
    EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(dist_frame, oversized_length_prefix_throws_the_pinned_error) {
    // A scrambled prefix claiming 4 GiB must be rejected before any
    // buffering, with the limit named.
    std::string wire;
    const std::uint32_t huge = 0xF0000000u;
    wire.push_back(static_cast<char>(huge & 0xff));
    wire.push_back(static_cast<char>((huge >> 8) & 0xff));
    wire.push_back(static_cast<char>((huge >> 16) & 0xff));
    wire.push_back(static_cast<char>((huge >> 24) & 0xff));
    wire.push_back(1);
    dist::frame_reader reader;
    reader.feed(wire.data(), wire.size());
    try {
        (void)reader.next();
        FAIL() << "oversized prefix decoded";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(),
                     "frame: oversized length prefix (4026531840 bytes > "
                     "67108864)");
    }
}

TEST(dist_frame, garbled_frame_throws_the_pinned_hash_mismatch) {
    // One flipped payload bit → integrity trailer disagrees.
    auto wire = dist::encode_frame(dist::frame_type::result, "clean bytes");
    wire[6] ^= 0x01;  // inside the payload (after u32 len + u8 type)
    dist::frame_reader reader;
    reader.feed(wire.data(), wire.size());
    try {
        (void)reader.next();
        FAIL() << "garbled frame decoded";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "frame: integrity hash mismatch (garbled frame)");
    }
}

TEST(dist_frame, conn_reports_truncated_frame_on_close) {
    // Peer dies mid-frame: read_frames must fail with the pinned
    // closed-mid-frame error naming the stranded byte count.
    pair_fds fds;
    dist::frame_conn conn{fds.fd[0]};
    const auto wire = dist::encode_frame(dist::frame_type::lease, "job json");
    fds.send_raw(wire.substr(0, 7));  // header + 2 payload bytes, no trailer
    fds.close_theirs();
    std::vector<dist::frame> frames;
    EXPECT_EQ(conn.read_frames(frames), dist::frame_conn::io_status::failed);
    EXPECT_TRUE(frames.empty());
    EXPECT_EQ(conn.error(), dist::closed_mid_frame_error(7));
    EXPECT_EQ(conn.error(),
              "frame: connection closed mid-frame (7 byte(s) of an "
              "incomplete frame)");
}

TEST(dist_frame, conn_clean_eof_between_frames_is_closed_not_failed) {
    pair_fds fds;
    dist::frame_conn conn{fds.fd[0]};
    fds.send_raw(dist::encode_frame(dist::frame_type::heartbeat, ""));
    fds.close_theirs();
    std::vector<dist::frame> frames;
    EXPECT_EQ(conn.read_frames(frames), dist::frame_conn::io_status::closed);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, dist::frame_type::heartbeat);
    EXPECT_TRUE(conn.error().empty());
}

TEST(dist_frame, conn_survives_signal_interrupted_short_reads) {
    // A writer thread dribbles a large frame in small chunks while
    // peppering the reading thread with SIGUSR1 (handler installed
    // without SA_RESTART, so reads really do come back EINTR). The
    // frame must still reassemble exactly.
    struct sigaction sa{};
    sa.sa_handler = [](int) {};
    struct sigaction old{};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    pair_fds fds;
    dist::frame_conn conn{fds.fd[0]};
    const std::string payload(1 << 20, 'Z');
    const auto wire = dist::encode_frame(dist::frame_type::result, payload);

    const pthread_t reader_thread = ::pthread_self();
    std::thread writer{[&] {
        std::size_t off = 0;
        while (off < wire.size()) {
            const std::size_t n = std::min<std::size_t>(4096, wire.size() - off);
            ssize_t w;
            do {
                w = ::write(fds.fd[1], wire.data() + off, n);
            } while (w < 0 && (errno == EINTR || errno == EAGAIN));
            ASSERT_GT(w, 0);
            off += static_cast<std::size_t>(w);
            ::pthread_kill(reader_thread, SIGUSR1);
        }
        fds.close_theirs();
    }};

    std::vector<dist::frame> frames;
    for (;;) {
        const auto status = conn.read_frames(frames);
        ASSERT_NE(status, dist::frame_conn::io_status::failed) << conn.error();
        if (status == dist::frame_conn::io_status::closed) break;
        if (!frames.empty() && frames.back().payload.size() == payload.size())
            break;
    }
    writer.join();
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, dist::frame_type::result);
    EXPECT_EQ(frames[0].payload, payload);
    ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

TEST(dist_frame, envelopes_roundtrip_and_reject_short_payloads) {
    dist::lease_envelope lease{3, 8, 2, 41};
    const auto lease_wire = dist::encode_lease(lease, "{\"job\":true}");
    std::string_view job;
    const auto lease_back = dist::decode_lease(lease_wire, &job);
    EXPECT_EQ(lease_back.shard, 3u);
    EXPECT_EQ(lease_back.shard_count, 8u);
    EXPECT_EQ(lease_back.attempt, 2u);
    EXPECT_EQ(lease_back.round, 41u);
    EXPECT_EQ(job, "{\"job\":true}");

    dist::result_envelope result{3, 8, 2, 0x8b /* SIGSEGV wait status */};
    const auto result_wire = dist::encode_result(result, "stdout bytes");
    std::string_view output;
    const auto result_back = dist::decode_result(result_wire, &output);
    EXPECT_EQ(result_back.shard, 3u);
    EXPECT_EQ(result_back.wait_status, 0x8b);
    EXPECT_EQ(output, "stdout bytes");

    try {
        (void)dist::decode_lease("short", nullptr);
        FAIL() << "short lease decoded";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(),
                     "lease frame: payload shorter than its 20-byte envelope");
    }
    try {
        (void)dist::decode_result("short", nullptr);
        FAIL() << "short result decoded";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(),
                     "result frame: payload shorter than its 16-byte envelope");
    }
}

TEST(dist_frame, handshake_json_roundtrips) {
    dist::hello_msg hello;
    hello.version = dist::net_protocol_version;
    hello.name = "node-7";
    hello.reconnects = 3;
    const auto hello_back = dist::hello_from_json(dist::hello_to_json(hello));
    EXPECT_EQ(hello_back.version, dist::net_protocol_version);
    EXPECT_EQ(hello_back.name, "node-7");
    EXPECT_EQ(hello_back.reconnects, 3u);

    dist::welcome_msg welcome;
    welcome.heartbeat_ms = 125;
    welcome.spec_digest = 0xdeadbeefcafef00dull;
    const auto welcome_back =
        dist::welcome_from_json(dist::welcome_to_json(welcome));
    EXPECT_EQ(welcome_back.heartbeat_ms, 125u);
    EXPECT_EQ(welcome_back.spec_digest, 0xdeadbeefcafef00dull);
}

}  // namespace
}  // namespace pssp
