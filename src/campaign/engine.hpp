// The parallel Monte-Carlo campaign engine.
//
// Execution model: the spec's cross product is flattened into one global
// trial index space (cell-major), grouped into canonical reduction blocks
// (campaign::blocks_for). A fixed pool of host threads pops *blocks* off
// an atomic counter; each trial derives two independent PRNG streams
// (server-side and attacker-side) purely from (master_seed, global trial
// index) via splitmix64, boots its own fork server from the cell's shared
// victim build, runs one attack strategy, and add()s its record into the
// block's mergeable partial — sequentially, in trial order. Block partials
// then merge in canonical order (campaign::assemble_report). Nothing
// observable depends on scheduling, so a 10k-trial campaign is
// bit-reproducible at any --jobs level — and, because a dist/ shard runs
// the same blocks through the same run_blocks() path, at any process
// partitioning too. tests/campaign/engine_test.cpp and tests/dist/ pin
// both properties.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/telemetry.hpp"
#include "workload/victim.hpp"

namespace pssp::campaign {

// Per-trial PRNG streams, split from the master seed. Exposed for tests:
// the derivation is part of the reproducibility contract.
struct trial_seeds {
    std::uint64_t server = 0;  // fork-server master (TLS canary C, ...)
    std::uint64_t attacker = 0;  // attack strategy nondeterminism
};
[[nodiscard]] trial_seeds seeds_for_trial(std::uint64_t master_seed,
                                          std::uint64_t trial_index);

class engine {
  public:
    explicit engine(campaign_spec spec);

    // Runs the whole campaign and reduces it. Victim builds (one compile +
    // link per (target, scheme)) happen up front on the calling thread;
    // trials fan out across spec.jobs workers. Throws if any trial threw.
    // Fixed allocation: equivalent to run_blocks(blocks_for(spec)) +
    // assemble_report — that IS the implementation, so a sharded run that
    // merges partial blocks reproduces this report byte-for-byte.
    // Adaptive allocation (spec.adaptive): drives campaign::
    // adaptive_allocator round by round through the same run_blocks path,
    // so the report is byte-identical to the dist orchestrator's sharded
    // adaptive run at any --jobs level.
    [[nodiscard]] campaign_report run();

    // Runs exactly the given blocks (a subset of blocks_for(spec), any
    // order) and returns their mergeable partials, index-aligned with
    // `blocks`. Each block is reduced by one worker with sequential add()s
    // in trial order; trial seeds derive from the *global* trial index, so
    // which process or thread runs a block never shows in its partial.
    // This is the unit of work a dist/ shard executes. Victims are built
    // only for the cells the blocks actually touch.
    [[nodiscard]] std::vector<cell_partial> run_blocks(
        std::span<const block_ref> blocks);

    // Optional observer, called after every finished trial with
    // (completed, total). Invoked under a mutex from worker threads. In an
    // adaptive run `total` is the current round's trial count — the
    // campaign total is unknowable before the last round by construction.
    void set_progress(std::function<void(std::uint64_t, std::uint64_t)> fn) {
        progress_ = std::move(fn);
    }

    // Optional telemetry observer, called once per completed round from
    // run() — after each adaptive round (round 1..N) or once for a fixed
    // campaign (round 0). Strictly a side channel: the summary is computed
    // from the same merged partials the report is, and nothing the
    // observer does can reach back into allocation or reduction.
    void set_round_observer(std::function<void(const obs::round_summary&)> fn) {
        round_observer_ = std::move(fn);
    }

  private:
    campaign_spec spec_;
    // One victim build per (target, scheme), built lazily by run_blocks for
    // the cells its blocks touch and cached across calls — an adaptive
    // round loop must not recompile the victims every round.
    std::vector<std::optional<workload::victim>> victims_;
    std::function<void(std::uint64_t, std::uint64_t)> progress_;
    std::function<void(const obs::round_summary&)> round_observer_;
};

}  // namespace pssp::campaign
