// The P-SSP family: the paper's basic scheme (Codes 3/4) and three of its
// deployment variants —
//   * p_ssp      : TLS shadow pair (C0, C1) refreshed per fork; 16-byte
//                  stack canary; TLS canary C itself never changes.
//   * p_ssp_nt   : extension 1 (Code 7) — rdrand in every prologue, no TLS
//                  shadow, no fork/pthread hooks.
//   * p_ssp32    : Section V-C — 32-bit pair packed in one 64-bit word so a
//                  binary rewriter can keep the SSP stack layout.
//   * p_ssp_gb   : Section VII-C — full 64-bit entropy with the SSP layout,
//                  via a per-process global buffer holding every C1.

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/schemes/schemes_internal.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core::detail {

using namespace vm::isa;
using vm::reg;

namespace {

// ---- P-SSP (basic) ----------------------------------------------------------

class p_ssp_scheme : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp; }
    std::string name() const override { return "P-SSP (fork-refreshed shadow pair)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 16; }

    // Code 3: copy both shadow words into the frame. C0 lands at the higher
    // address (rbp-8), C1 below it (rbp-16), exactly as in the listing.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t c1_slot = plan.return_guard().offset;  // rbp-16
        const std::int32_t c0_slot = c1_slot + 8;                 // rbp-8
        f.emit({mov_rm(reg::rax, fs(tls_shadow_c0)),
                mov_mr(mem(reg::rbp, c0_slot), reg::rax),
                mov_rm(reg::rax, fs(tls_shadow_c1)),
                mov_mr(mem(reg::rbp, c1_slot), reg::rax)});
    }

    // Code 4: C0 XOR C1 must equal the TLS canary C.
    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t c1_slot = plan.return_guard().offset;
        const std::int32_t c0_slot = c1_slot + 8;
        f.emit({mov_rm(reg::rdx, mem(reg::rbp, c0_slot)),
                mov_rm(reg::rdi, mem(reg::rbp, c1_slot)),
                xor_rr(reg::rdx, reg::rdi), xor_rm(reg::rdx, fs(tls_canary))});
        emit_check_tail(f, img);
    }

    // setup_p-ssp constructor: C plus the initial shadow split.
    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        const std::uint64_t c = fresh_tls_canary(rng);
        tls_store(m, tls_canary, c);
        const canary_pair shadow = re_randomize(c, rng);
        tls_store(m, tls_shadow_c0, shadow.c0);
        tls_store(m, tls_shadow_c1, shadow.c1);
    }

    // The fork wrapper: refresh only the *shadow* pair in the child. C is
    // untouched, so frames inherited from the parent stay verifiable.
    void runtime_on_fork_child(vm::machine& child, crypto::xoshiro256& rng) const override {
        const std::uint64_t c = tls_load(child, tls_canary);
        const canary_pair shadow = re_randomize(c, rng);
        tls_store(child, tls_shadow_c0, shadow.c0);
        tls_store(child, tls_shadow_c1, shadow.c1);
        child.charge(12);  // the wrapper's Algorithm-1 split: O(1), depth-free
    }

    bool updates_tls_on_fork() const noexcept override { return true; }
};

// ---- P-SSP-NT ---------------------------------------------------------------

class p_ssp_nt_scheme final : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp_nt; }
    std::string name() const override { return "P-SSP-NT (per-call rdrand, no TLS update)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 16; }

    // Code 7: a fresh split on every invocation; the TLS holds only C.
    // rdrand can transiently fail (CF=0, destination untouched) — real
    // deployments retry, and so do we: installing a stale register as the
    // canary would be a silent correctness *and* security bug.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t c1_slot = plan.return_guard().offset;
        const std::int32_t c0_slot = c1_slot + 8;
        const auto retry = f.new_label();
        f.place(retry);
        f.emit({rdrand(reg::rax), jnc(retry),
                mov_mr(mem(reg::rbp, c0_slot), reg::rax),
                mov_rm(reg::rcx, fs(tls_canary)), xor_rr(reg::rcx, reg::rax),
                mov_mr(mem(reg::rbp, c1_slot), reg::rcx)});
    }

    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t c1_slot = plan.return_guard().offset;
        const std::int32_t c0_slot = c1_slot + 8;
        f.emit({mov_rm(reg::rdx, mem(reg::rbp, c0_slot)),
                mov_rm(reg::rdi, mem(reg::rbp, c1_slot)),
                xor_rr(reg::rdx, reg::rdi), xor_rm(reg::rdx, fs(tls_canary))});
        emit_check_tail(f, img);
    }

    // No shadow canary, no fork hook, no pthread hook: deployment is just
    // the compiler flag. (runtime_setup inherits the default: set C.)
};

// ---- P-SSP-32 (instrumentation downgrade, Section V-C) ----------------------

class p_ssp32_scheme final : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp32; }
    std::string name() const override { return "P-SSP-32 (packed 32-bit pair)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    // Code 5's shape: identical to the SSP prologue except the TLS offset —
    // the packed shadow pair at %fs:0x2a8 instead of C at %fs:0x28.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rax, fs(tls_shadow_c0)),
                mov_mr(mem(reg::rbp, slot), reg::rax)});
    }

    // Fig 4's check, inlined (the rewriter hides the same logic inside the
    // patched __stack_chk_fail): split the word, xor halves, compare
    // against low32(C).
    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rdx, mem(reg::rbp, slot)), mov_rr(reg::rdi, reg::rdx),
                shr_ri(reg::rdi, 32),            // C1
                shl_ri(reg::rdx, 32), shr_ri(reg::rdx, 32),  // C0
                xor_rr(reg::rdx, reg::rdi),      // C0 ^ C1
                mov_rm(reg::rdi, fs(tls_canary)), shl_ri(reg::rdi, 32),
                shr_ri(reg::rdi, 32),            // low32(C)
                xor_rr(reg::rdx, reg::rdi)});
        emit_check_tail(f, img);
    }

    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        const std::uint64_t c = fresh_tls_canary(rng);
        tls_store(m, tls_canary, c);
        tls_store(m, tls_shadow_c0, re_randomize32(c, rng).packed());
    }

    void runtime_on_fork_child(vm::machine& child, crypto::xoshiro256& rng) const override {
        const std::uint64_t c = tls_load(child, tls_canary);
        tls_store(child, tls_shadow_c0, re_randomize32(c, rng).packed());
        child.charge(10);  // constant-time wrapper work
    }

    bool updates_tls_on_fork() const noexcept override { return true; }
};

// ---- P-SSP-GB (global-buffer variant, Section VII-C) ------------------------

class p_ssp_gb_scheme final : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp_gb; }
    std::string name() const override { return "P-SSP-GB (C1 in per-process global buffer)"; }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    // Only C0 goes on the stack (SSP layout preserved); C1 = C0 XOR C is
    // pushed into the global canary buffer whose top pointer lives in TLS.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        const auto retry = f.new_label();
        f.place(retry);
        f.emit({rdrand(reg::rax), jnc(retry),
                mov_mr(mem(reg::rbp, slot), reg::rax),
                mov_rm(reg::rcx, fs(tls_canary)), xor_rr(reg::rcx, reg::rax),
                mov_rm(reg::rdx, fs(tls_gbuf_top)), mov_mr(mem(reg::rdx, 0), reg::rcx),
                add_ri(reg::rdx, 8), mov_mr(fs(tls_gbuf_top), reg::rdx)});
    }

    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rcx, fs(tls_gbuf_top)), sub_ri(reg::rcx, 8),
                mov_mr(fs(tls_gbuf_top), reg::rcx),
                mov_rm(reg::rdi, mem(reg::rcx, 0)),          // C1
                mov_rm(reg::rdx, mem(reg::rbp, slot)),       // C0
                xor_rr(reg::rdx, reg::rdi), xor_rm(reg::rdx, fs(tls_canary))});
        emit_check_tail(f, img);
    }

    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        tls_store(m, tls_canary, fresh_tls_canary(rng));
        tls_store(m, tls_gbuf_top, gbuf_base(m));
    }

    // fork: nothing to do — the child's memory clone already duplicated the
    // global buffer and the TLS top pointer ("the child processes clones
    // their parent process' global buffer", Section VII-C). Freshness of
    // *new* frames comes from rdrand in the prologue.
};

// ---- P-SSP-C0TLS (Section VII-C's rejected strawman) -------------------------
// "One might suggest to place C0 in the TLS as the TLS shadow canary and
// compute C1 in every function prologue so that only C1 is used as the
// stack canary... Unfortunately, it is not satisfactory": when a fork
// replaces the child's C0, frames inherited from the parent hold C1 values
// derived from the OLD C0, and "the program is doomed to crash". We build
// it anyway so the failure is a measured result, not a rhetorical one.
class p_ssp_c0tls_scheme final : public scheme {
  public:
    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp_c0tls; }
    std::string name() const override {
        return "P-SSP-C0TLS (rejected Section VII-C design)";
    }
    std::int32_t stack_canary_bytes() const noexcept override { return 8; }

    // Stack canary = C1 = C0 ^ C, with C0 living only in the TLS shadow.
    void emit_prologue(binfmt::bin_function& f, binfmt::image&,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rax, fs(tls_shadow_c0)), xor_rm(reg::rax, fs(tls_canary)),
                mov_mr(mem(reg::rbp, slot), reg::rax)});
    }

    // Check: C1 ^ C0 ^ C == 0.
    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t slot = plan.return_guard().offset;
        f.emit({mov_rm(reg::rdx, mem(reg::rbp, slot)),
                xor_rm(reg::rdx, fs(tls_shadow_c0)), xor_rm(reg::rdx, fs(tls_canary))});
        emit_check_tail(f, img);
    }

    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        tls_store(m, tls_canary, fresh_tls_canary(rng));
        tls_store(m, tls_shadow_c0, rng());
    }

    // The rejected semantics: the child's C0 is replaced wholesale. Frames
    // created before the fork become unverifiable — the paper's objection.
    void runtime_on_fork_child(vm::machine& child, crypto::xoshiro256& rng) const override {
        tls_store(child, tls_shadow_c0, rng());
        child.charge(8);
    }

    bool updates_tls_on_fork() const noexcept override { return true; }
};

}  // namespace

std::unique_ptr<scheme> make_p_ssp() { return std::make_unique<p_ssp_scheme>(); }
std::unique_ptr<scheme> make_p_ssp_nt() { return std::make_unique<p_ssp_nt_scheme>(); }
std::unique_ptr<scheme> make_p_ssp32() { return std::make_unique<p_ssp32_scheme>(); }
std::unique_ptr<scheme> make_p_ssp_gb() { return std::make_unique<p_ssp_gb_scheme>(); }

std::unique_ptr<scheme> make_p_ssp_c0tls() {
    return std::make_unique<p_ssp_c0tls_scheme>();
}

}  // namespace pssp::core::detail
