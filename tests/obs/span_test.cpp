// The span tracer's contracts: disabled tracing records nothing, ring
// overflow keeps the newest N spans, the Chrome export is valid JSON with
// properly nested intervals, and the flight record is bounded.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

#if PSSP_OBS

class obs_span : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::clear_spans_for_test();
        obs::enable_tracing(true);
    }
    void TearDown() override {
        obs::enable_tracing(false);
        obs::clear_spans_for_test();
    }
};

TEST_F(obs_span, disabled_tracing_records_nothing) {
    obs::enable_tracing(false);
    { obs::span sp{"ignored", "test"}; }
    obs::emit_span("also_ignored", "test", 0, 1);
    EXPECT_EQ(obs::buffered_span_count(), 0u);
}

TEST_F(obs_span, scoped_span_records_once) {
    { obs::span sp{"unit", "test", 7}; }
    EXPECT_EQ(obs::buffered_span_count(), 1u);
}

TEST_F(obs_span, ring_overflow_keeps_newest_n) {
    // Capacity applies to rings created after the call, so the small ring
    // must be exercised from a fresh thread (this thread's full-size ring
    // already exists).
    obs::set_ring_capacity(8);
    std::thread writer{[] {
        for (int i = 0; i < 100; ++i)
            obs::emit_span(("span_" + std::to_string(i)).c_str(), "test",
                           static_cast<std::uint64_t>(i) * 1000, 10,
                           /*arg=*/i);
    }};
    writer.join();
    obs::set_ring_capacity(4096);

    EXPECT_EQ(obs::buffered_span_count(), 8u);
    // The survivors must be exactly the newest 8 (span_92..span_99).
    const auto doc = util::parse_json(obs::chrome_trace_json());
    const auto& events = doc.at("traceEvents").elements();
    ASSERT_EQ(events.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(events[static_cast<std::size_t>(i)].at("name").as_string(),
                  "span_" + std::to_string(92 + i));
}

TEST_F(obs_span, chrome_trace_parses_and_nests) {
    {
        obs::span outer{"outer", "test", 1};
        std::this_thread::sleep_for(std::chrono::milliseconds{2});
        {
            obs::span inner{"inner", "test", 2};
            std::this_thread::sleep_for(std::chrono::milliseconds{1});
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
    }
    const auto doc = util::parse_json(obs::chrome_trace_json("span_test"));
    const auto& events = doc.at("traceEvents").elements();
    // process_name metadata event + the two spans, sorted by start time.
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].at("ph").as_string(), "M");
    EXPECT_EQ(events[0].at("args").at("name").as_string(), "span_test");
    const auto& outer = events[1];
    const auto& inner = events[2];
    EXPECT_EQ(outer.at("name").as_string(), "outer");
    EXPECT_EQ(inner.at("name").as_string(), "inner");
    EXPECT_EQ(outer.at("ph").as_string(), "X");
    EXPECT_EQ(outer.at("cat").as_string(), "test");
    EXPECT_EQ(outer.at("args").at("n").as_u64(), 1u);
    // Interval nesting in microseconds: inner starts after outer and ends
    // before outer ends — the property chrome://tracing renders as a
    // child bar.
    const double outer_ts = outer.at("ts").as_double();
    const double outer_dur = outer.at("dur").as_double();
    const double inner_ts = inner.at("ts").as_double();
    const double inner_dur = inner.at("dur").as_double();
    EXPECT_GE(inner_ts, outer_ts);
    EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);
    EXPECT_GE(inner_dur, 1000.0);   // slept >= 1ms
    EXPECT_GE(outer_dur, 4000.0);   // slept >= 4ms total
}

TEST_F(obs_span, spans_from_multiple_threads_all_export) {
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 16;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([] {
            for (int i = 0; i < kSpansPerThread; ++i)
                obs::span sp{"worker_span", "test", i};
        });
    for (auto& t : pool) t.join();
    EXPECT_EQ(obs::buffered_span_count(), kThreads * kSpansPerThread);
}

TEST_F(obs_span, flight_record_is_bounded_and_newest_first_window) {
    for (int i = 0; i < 50; ++i)
        obs::emit_span(("f" + std::to_string(i)).c_str(), "test",
                       static_cast<std::uint64_t>(i) * 1000, 10);
    const auto doc = util::parse_json(obs::flight_record_json(/*max_spans=*/10));
    const auto& spans = doc.at("spans").elements();
    ASSERT_EQ(spans.size(), 10u);
    // Chronological order, and the window is the newest 10 (f40..f49).
    EXPECT_EQ(spans.front().at("name").as_string(), "f40");
    EXPECT_EQ(spans.back().at("name").as_string(), "f49");
}

#else  // PSSP_OBS == 0

TEST(obs_span, stubs_compile_and_export_empty) {
    obs::enable_tracing(true);
    { obs::span sp{"ignored"}; }
    EXPECT_EQ(obs::buffered_span_count(), 0u);
    const auto doc = util::parse_json(obs::chrome_trace_json());
    EXPECT_TRUE(doc.at("traceEvents").elements().empty());
}

#endif

}  // namespace
}  // namespace pssp
