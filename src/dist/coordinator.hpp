// The TCP coordinator: lease-based work assignment over framed sockets.
//
// dist::coordinator is the network counterpart of supervise_jobs(): it
// holds the same job vector (block-manifest jobs from build_round_jobs),
// runs every job to the same terminal job_result, and classifies every
// finished attempt through the same classify_attempt() — but the attempt
// executes on a remote worker node (tools_campaign_node) instead of a
// local fork/exec child. Because the lease payload is the *same*
// round-job JSON the local pipe transport feeds over stdin, and the
// result payload is the compute child's raw stdout, the merge downstream
// cannot tell the transports apart: report bytes are identical to
// --jobs 1 by construction.
//
// Robustness model (the design center):
//
//   * lease         each job is leased to exactly one registered worker
//                   at a time, with a deadline (lease_seconds). Capacity
//                   is one lease per worker, so in-flight work is bounded
//                   by the fleet size and a slow worker cannot starve the
//                   round — idle workers drain the queue around it.
//   * expiry        an expired lease evicts the worker (its connection is
//                   closed; a late result must not race a re-lease) and
//                   requeues the job with attempt+1 under the existing
//                   at-least-once + dedup-by-block invariant.
//   * heartbeats    workers must send a frame at least every
//                   heartbeat_seconds; silence past the grace multiple
//                   evicts and requeues exactly like an expiry.
//   * disconnect    a dropped connection (including a garbled frame —
//                   integrity-hash failure poisons the connection)
//                   requeues the worker's lease. A worker that
//                   reconnects re-registers under the same name and
//                   resumes taking leases.
//   * vanishing     a worker that never comes back merely shrinks the
//                   fleet: its requeued lease lands on a survivor. Only
//                   when *no* worker is registered for
//                   register_wait_seconds does the run fail loudly.
//   * retry budget  requeues burn attempts from the same fault_policy as
//                   the local supervisor; exhaustion fails the job with
//                   the same aggregated error shape. Exit 127 from the
//                   compute child is never requeued (missing binaries do
//                   not heal).
//   * drain         SIGTERM (or request_drain()) stops new lease
//                   assignment, lets in-flight leases finish (their
//                   results are checkpointed by the per-job hooks), sends
//                   shutdown to the fleet, and throws a "drained" error —
//                   the run exits non-zero but --resume picks up from the
//                   checkpoint byte-identically.
//
// Fleet mode (fleet_workers > 0): the coordinator self-spawns that many
// localhost tools_campaign_node daemons pointed back at its own ephemeral
// port — the tests/CI topology. The children set PR_SET_PDEATHSIG, so a
// SIGKILLed coordinator (--kill-after-round) cannot leak node processes.
// With fleet_workers == 0 the coordinator only listens; remote nodes are
// started out-of-band with `tools_campaign_node --connect host:port`.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "dist/frame.hpp"
#include "dist/supervisor.hpp"

namespace pssp::dist {

struct net_options {
    // Listen address. Port 0 binds an ephemeral port; on_listen reports
    // the actual one (tests and --listen 0 depend on this — parallel CI
    // runs must never race on a fixed port).
    std::string listen_host = "127.0.0.1";
    std::uint16_t listen_port = 0;
    std::function<void(std::uint16_t)> on_listen;

    // Self-spawned localhost fleet size; 0 = external workers only.
    unsigned fleet_workers = 0;
    // Node binary for fleet mode; empty resolves the sibling
    // tools_campaign_node of the running executable.
    std::string node_path;
    // Compute worker binary the fleet nodes fork per lease; empty lets
    // each node resolve its own sibling tools_campaign_worker.
    std::string worker_path;

    // Lease deadline per attempt, seconds. 0 derives from
    // fault_policy.timeout_seconds; if that is 0 too, leases never expire
    // (heartbeats and disconnects still recover lost workers).
    double lease_seconds = 0.0;
    // Heartbeat interval the welcome imposes on workers, and the silence
    // (interval * grace) after which a worker is evicted.
    double heartbeat_seconds = 0.25;
    double heartbeat_grace = 8.0;
    // How long run_jobs() waits with work pending but zero registered
    // workers before failing the run.
    double register_wait_seconds = 30.0;
};

class coordinator {
  public:
    // Binds and listens immediately (so on_listen fires with the real
    // port before any fleet child is spawned), spawns the fleet, and
    // installs the SIGTERM drain handler. Throws std::runtime_error on
    // socket/bind/listen failure.
    coordinator(const net_options& options, const fault_policy& policy,
                std::uint64_t spec_digest);
    ~coordinator();
    coordinator(const coordinator&) = delete;
    coordinator& operator=(const coordinator&) = delete;

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    // The network counterpart of supervise_jobs(): runs every job to a
    // terminal job_result over the registered workers. Callable once per
    // round — workers stay registered between calls. Throws
    // std::runtime_error on infrastructure failure, a drain request, or
    // a register-wait timeout.
    [[nodiscard]] std::vector<job_result> run_jobs(
        const std::vector<supervised_job>& jobs, const supervise_hooks& hooks,
        supervise_stats& stats);

    // Stop assigning new leases; run_jobs() finishes in-flight work and
    // throws. SIGTERM calls this from its handler.
    void request_drain() noexcept;

    // The exact handshake-rejection message a version-mismatched worker
    // receives in its error frame (pinned by tests).
    [[nodiscard]] static std::string version_mismatch_error(
        std::uint32_t worker_version);

    // Drives accept/handshake/heartbeat once without a job batch —
    // lets tests register workers (and reject mismatched ones) before or
    // between rounds. Waits up to wait_ms for socket activity.
    void pump(int wait_ms);

    // Registered (post-handshake) worker count right now.
    [[nodiscard]] std::size_t registered_workers() const noexcept;

  private:
    struct impl;
    impl* impl_;
    std::uint16_t port_ = 0;
};

// The sibling `tools_campaign_node` of the running executable.
[[nodiscard]] std::string default_node_path();

}  // namespace pssp::dist
