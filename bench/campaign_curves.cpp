// Monte-Carlo attack-campaign curves — Table I's outcome column, measured.
//
// The paper states each scheme/attack outcome once ("prevented" /
// "compromised"); this bench reruns every pairing as a seeded campaign of
// independent trials — fresh server (fresh TLS canary C) per trial — and
// reports the outcome *distribution*: hijack and detection rates with
// Wilson 95% intervals, mean oracle queries to compromise, and the
// residual value of leaked canary bytes at replay time.
//
// Reproducibility contract: the report JSON is a pure function of
// (--seed, --trials, --budget); --jobs only changes wall-clock. Verify:
//   bench_campaign_curves --jobs 1 --json a.json
//   bench_campaign_curves --jobs 8 --json b.json
//   cmp a.json b.json

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "bench_util.hpp"
#include "campaign/engine.hpp"
#include "dist/orchestrator.hpp"

namespace {

using namespace pssp;

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--trials N] [--jobs N] [--shards N] [--seed S]\n"
                 "          [--budget Q] [--json PATH|-] [--bench-json PATH|-]\n"
                 "          [--fresh-masters] [--worker PATH] [--progress]\n"
                 "  --trials N   trials per campaign cell (default 112: 9 cells\n"
                 "               x 112 = 1008 total trials)\n"
                 "  --jobs N     worker threads (default 1; 0 = all cores)\n"
                 "  --shards N   fan the campaign out across N worker processes\n"
                 "               (default 0 = in-process; the report is\n"
                 "               byte-identical either way)\n"
                 "  --worker PATH  campaign worker binary for --shards\n"
                 "  --seed S     master seed (default 2018)\n"
                 "  --budget Q   oracle-query budget per trial (default 4096)\n"
                 "  --json PATH  write the campaign_report JSON ('-' = stdout)\n"
                 "  --bench-json PATH  write BENCH_campaign.json throughput\n"
                 "               numbers (wall-time, trials/sec, per-cell cost)\n"
                 "  --fresh-masters    boot a fresh fork server per trial instead\n"
                 "               of the snapshot-reuse pool (report is identical\n"
                 "               either way; this is a perf A/B knob)\n"
                 "  --progress   live trial counter on stderr\n",
                 argv0);
}

}  // namespace

int main(int argc, char** argv) {
    campaign::campaign_spec spec = campaign::default_spec();
    spec.trials_per_cell = 112;
    const char* json_path = nullptr;
    const char* bench_json_path = nullptr;
    bool progress = false;
    unsigned shards = 0;  // 0 = in-process engine
    const char* worker_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--trials")) {
            spec.trials_per_cell = std::strtoull(next_value("--trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--jobs")) {
            spec.jobs = static_cast<unsigned>(
                std::strtoul(next_value("--jobs"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--shards")) {
            shards = static_cast<unsigned>(
                std::strtoul(next_value("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--worker")) {
            worker_path = next_value("--worker");
        } else if (!std::strcmp(argv[i], "--seed")) {
            spec.master_seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--budget")) {
            spec.query_budget = std::strtoull(next_value("--budget"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next_value("--json");
        } else if (!std::strcmp(argv[i], "--bench-json")) {
            bench_json_path = next_value("--bench-json");
        } else if (!std::strcmp(argv[i], "--fresh-masters")) {
            spec.reuse_masters = false;
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    bench::print_header("Attack-campaign detection curves",
                        "Table I outcomes as measured probabilities "
                        "(Sections III-C, IV-C, VI-C)");
    std::printf("campaign: %llu cells x %llu trials, seed %llu, budget %llu, "
                "jobs %u\n\n",
                static_cast<unsigned long long>(spec.cell_count()),
                static_cast<unsigned long long>(spec.trials_per_cell),
                static_cast<unsigned long long>(spec.master_seed),
                static_cast<unsigned long long>(spec.query_budget), spec.jobs);

    campaign::campaign_report report;
    double wall_seconds = 0.0;
    try {
        const auto start = std::chrono::steady_clock::now();
        if (shards > 0) {
            // Multi-process fan-out; merged report byte-identical to the
            // in-process path below (per-trial progress stays in-process
            // only — workers own their trials).
            dist::sharded_options options;
            options.shards = shards;
            if (worker_path != nullptr) options.worker_path = worker_path;
            report = dist::run_sharded(spec, options);
        } else {
            campaign::engine eng{spec};
            if (progress)
                eng.set_progress([](std::uint64_t done, std::uint64_t total) {
                    std::fprintf(stderr, "\r%llu/%llu trials",
                                 static_cast<unsigned long long>(done),
                                 static_cast<unsigned long long>(total));
                    if (done == total) std::fprintf(stderr, "\n");
                });
            report = eng.run();
        }
        wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    std::printf("%s\n", report.to_table().c_str());
    std::printf(
        "paper: byte-by-byte compromises SSP (expected ~8*2^7+1 = 1025\n"
        "       queries) and fails against P-SSP with detection rate ~1;\n"
        "       RAF-SSP also defeats byte-by-byte (C renewed per fork) but\n"
        "       its leak window matches SSP's. Leaked canaries stay fully\n"
        "       valid under SSP (8/8 bytes) and go stale under P-SSP.\n");

    if (json_path) {
        const auto json = report.to_json();
        if (!std::strcmp(json_path, "-")) {
            std::printf("%s\n", json.c_str());
        } else {
            std::ofstream out{json_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", json_path);
                return 1;
            }
            out << json << '\n';
        }
    }

    if (bench_json_path) {
        // Throughput sidecar (BENCH_campaign.json). Deliberately separate
        // from the report: the report is a pure function of the spec, this
        // is a property of the machine and build that ran it.
        const double trials = static_cast<double>(spec.trial_count());
        const double cells = static_cast<double>(spec.cell_count());
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "{\n"
            "  \"bench\": \"campaign_curves\",\n"
            "  \"trials\": %llu,\n"
            "  \"cells\": %llu,\n"
            "  \"jobs\": %u,\n"
            "  \"reuse_masters\": %s,\n"
            "  \"wall_seconds\": %.3f,\n"
            "  \"trials_per_sec\": %.1f,\n"
            "  \"seconds_per_cell_mean\": %.4f\n"
            "}\n",
            static_cast<unsigned long long>(spec.trial_count()),
            static_cast<unsigned long long>(spec.cell_count()), spec.jobs,
            spec.reuse_masters ? "true" : "false", wall_seconds,
            trials / wall_seconds, wall_seconds / cells);
        if (!std::strcmp(bench_json_path, "-")) {
            std::printf("%s", buf);
        } else {
            std::ofstream out{bench_json_path, std::ios::binary};
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", bench_json_path);
                return 1;
            }
            out << buf;
        }
    }
    return 0;
}
