#include "core/canary.hpp"

namespace pssp::core {

canary_pair re_randomize(std::uint64_t tls_canary, crypto::xoshiro256& rng) noexcept {
    const std::uint64_t c0 = rng();
    return {c0, c0 ^ tls_canary};
}

canary_pair32 re_randomize32(std::uint64_t tls_canary, crypto::xoshiro256& rng) noexcept {
    const auto c0 = static_cast<std::uint32_t>(rng());
    return {c0, c0 ^ static_cast<std::uint32_t>(tls_canary)};
}

std::uint64_t fresh_tls_canary(crypto::xoshiro256& rng) noexcept { return rng(); }

}  // namespace pssp::core
