#include "obs/registry.hpp"

#if PSSP_OBS

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace pssp::obs {
namespace {

// Metric names are dotted identifiers, but quote defensively anyway.
std::string quoted(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

constexpr std::size_t kHistogramBuckets = 64;
// Fixed slot arena: registration hands out indices into these, so the hot
// path never chases a pointer that registration could be reallocating.
// 1024 named metrics is an order of magnitude above current usage; running
// out is a programming error worth a loud message, not silent wraparound.
constexpr std::size_t kMaxMetrics = 1024;
constexpr std::size_t kMaxHistograms = 256;

struct histogram_slot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
};

struct registry_state {
    std::mutex mutex;  // registration + snapshot only, never the hot path
    std::unordered_map<std::string, metric_id> by_name;
    std::vector<std::string> names;     // indexed by metric_id, mutex-only
    std::vector<metric_type> types;     // indexed by metric_id, mutex-only
    std::array<std::atomic<std::uint64_t>, kMaxMetrics> scalars{};
    // Histograms get a second, sparse arena; hist_index[id] points into it.
    // Both sides are fixed arrays: late registration (fork-server reboots
    // register lazily) must never reallocate under a lock-free observe().
    std::array<std::uint32_t, kMaxMetrics> hist_index{};
    std::uint32_t histogram_count = 0;  // mutex-only
    std::array<histogram_slot, kMaxHistograms> histograms{};
};

registry_state& state() {
    static registry_state* s = new registry_state;  // never destructed
    return *s;
}

metric_id register_metric(std::string_view name, metric_type type) {
    auto& s = state();
    std::lock_guard lock{s.mutex};
    if (const auto it = s.by_name.find(std::string{name});
        it != s.by_name.end())
        return it->second;
    if (s.names.size() >= kMaxMetrics) {
        std::fprintf(stderr,
                     "obs: metric arena exhausted registering '%.*s'\n",
                     static_cast<int>(name.size()), name.data());
        std::abort();
    }
    const auto id = static_cast<metric_id>(s.names.size());
    s.names.emplace_back(name);
    s.types.push_back(type);
    if (type == metric_type::histogram) {
        if (s.histogram_count >= kMaxHistograms) {
            std::fprintf(stderr,
                         "obs: histogram arena exhausted registering '%.*s'\n",
                         static_cast<int>(name.size()), name.data());
            std::abort();
        }
        s.hist_index[id] = s.histogram_count++;
    }
    s.by_name.emplace(std::string{name}, id);
    return id;
}

std::size_t bucket_for(std::uint64_t sample) {
    return sample < 2 ? 0 : std::bit_width(sample) - 1;
}

}  // namespace

metric_id counter(std::string_view name) {
    return register_metric(name, metric_type::counter);
}

metric_id gauge(std::string_view name) {
    return register_metric(name, metric_type::gauge);
}

metric_id histogram(std::string_view name) {
    return register_metric(name, metric_type::histogram);
}

void add(metric_id id, std::uint64_t delta) noexcept {
    state().scalars[id].fetch_add(delta, std::memory_order_relaxed);
}

void set(metric_id id, std::uint64_t value) noexcept {
    state().scalars[id].store(value, std::memory_order_relaxed);
}

void observe(metric_id id, std::uint64_t sample) noexcept {
    auto& s = state();
    // hist_index is written before the id escapes register_metric, so an
    // id in hand implies the slot exists.
    auto& h = s.histograms[s.hist_index[id]];
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(sample, std::memory_order_relaxed);
    h.buckets[bucket_for(sample)].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t value(metric_id id) noexcept {
    return state().scalars[id].load(std::memory_order_relaxed);
}

std::vector<metric_snapshot> snapshot() {
    auto& s = state();
    std::lock_guard lock{s.mutex};
    std::vector<metric_snapshot> out;
    out.reserve(s.names.size());
    for (std::size_t id = 0; id < s.names.size(); ++id) {
        metric_snapshot m;
        m.name = s.names[id];
        m.type = s.types[id];
        if (m.type == metric_type::histogram) {
            const auto& h = s.histograms[s.hist_index[id]];
            m.count = h.count.load(std::memory_order_relaxed);
            m.sum = h.sum.load(std::memory_order_relaxed);
            m.buckets.reserve(kHistogramBuckets);
            for (const auto& b : h.buckets)
                m.buckets.push_back(b.load(std::memory_order_relaxed));
        } else {
            m.value = s.scalars[id].load(std::memory_order_relaxed);
        }
        out.push_back(std::move(m));
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.name < b.name; });
    return out;
}

std::string metrics_json() {
    const auto metrics = snapshot();
    std::string json = "{";
    bool first = true;
    for (const auto& m : metrics) {
        if (!first) json += ", ";
        first = false;
        json += quoted(m.name);
        json += ": ";
        if (m.type == metric_type::histogram) {
            // Rebuild p50/max from the log2 buckets: good enough to rank
            // and eyeball, exact count/sum for arithmetic.
            std::uint64_t seen = 0;
            std::uint64_t p50 = 0;
            std::uint64_t max_bucket = 0;
            for (std::size_t b = 0; b < m.buckets.size(); ++b) {
                if (m.buckets[b] == 0) continue;
                max_bucket = b;
                if (seen < (m.count + 1) / 2 &&
                    seen + m.buckets[b] >= (m.count + 1) / 2)
                    p50 = b == 0 ? 1 : std::uint64_t{1} << b;
                seen += m.buckets[b];
            }
            const double mean =
                m.count == 0 ? 0.0
                             : static_cast<double>(m.sum) /
                                   static_cast<double>(m.count);
            char buf[160];
            std::snprintf(buf, sizeof buf,
                          "{\"count\": %llu, \"sum\": %llu, \"mean\": %.2f, "
                          "\"p50\": %llu, \"max\": %llu}",
                          static_cast<unsigned long long>(m.count),
                          static_cast<unsigned long long>(m.sum), mean,
                          static_cast<unsigned long long>(p50),
                          static_cast<unsigned long long>(
                              m.count == 0 ? 0
                                           : std::uint64_t{1} << max_bucket));
            json += buf;
        } else {
            json += std::to_string(m.value);
        }
    }
    json += "}";
    return json;
}

void reset_all_for_test() {
    auto& s = state();
    std::lock_guard lock{s.mutex};
    for (auto& slot : s.scalars) slot.store(0, std::memory_order_relaxed);
    for (auto& h : s.histograms) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
}

}  // namespace pssp::obs

#endif  // PSSP_OBS
