#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pssp::util {

text_table::text_table(std::vector<std::string> header) : header_{std::move(header)} {}

void text_table::add_row(std::vector<std::string> row) {
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string text_table::render(const std::string& title) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    if (!title.empty()) out << title << '\n';

    auto emit_row = [&](const std::vector<std::string>& row) {
        out << "| ";
        for (std::size_t c = 0; c < header_.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string{};
            out << cell << std::string(widths[c] - cell.size(), ' ');
            out << (c + 1 == header_.size() ? " |" : " | ");
        }
        out << '\n';
    };

    auto emit_rule = [&] {
        out << '+';
        for (std::size_t c = 0; c < header_.size(); ++c)
            out << std::string(widths[c] + 2, '-') << '+';
        out << '\n';
    };

    emit_rule();
    emit_row(header_);
    emit_rule();
    for (const auto& row : rows_) emit_row(row);
    emit_rule();
    return out.str();
}

bar_chart::bar_chart(std::string value_caption, std::size_t width)
    : value_caption_{std::move(value_caption)}, width_{width} {}

void bar_chart::add(std::string label, double value) {
    entries_.push_back({std::move(label), value});
}

std::string bar_chart::render(const std::string& title) const {
    std::ostringstream out;
    if (!title.empty()) out << title << '\n';
    if (entries_.empty()) return out.str();

    std::size_t label_width = 0;
    double max_value = 0.0;
    for (const auto& e : entries_) {
        label_width = std::max(label_width, e.label.size());
        max_value = std::max(max_value, e.value);
    }
    if (max_value <= 0.0) max_value = 1.0;

    for (const auto& e : entries_) {
        const auto bar_len = static_cast<std::size_t>(
            std::lround(std::max(0.0, e.value) / max_value * static_cast<double>(width_)));
        out << "  " << e.label << std::string(label_width - e.label.size(), ' ') << " |"
            << std::string(bar_len, '#') << std::string(width_ - bar_len, ' ') << "| "
            << fmt(e.value) << ' ' << value_caption_ << '\n';
    }
    return out.str();
}

std::string fmt(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
    return buf;
}

std::string fmt_percent(double value, int decimals) {
    return fmt(value, decimals) + "%";
}

std::string fmt_bytes(std::size_t bytes) {
    if (bytes >= 1024 * 1024)
        return fmt(static_cast<double>(bytes) / (1024.0 * 1024.0)) + " MiB";
    if (bytes >= 1024) return fmt(static_cast<double>(bytes) / 1024.0) + " KiB";
    return std::to_string(bytes) + " B";
}

}  // namespace pssp::util
