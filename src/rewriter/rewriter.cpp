#include "rewriter/rewriter.hpp"

#include <stdexcept>

#include "binfmt/stdlib.hpp"
#include "core/tls_layout.hpp"
#include "vm/isa.hpp"

namespace pssp::rewriter {

using namespace vm::isa;
using vm::instruction;
using vm::opcode;
using vm::reg;

namespace {

// SSP prologue signature (Code 1, lines 4-5): a TLS canary load followed by
// its spill into the frame slot.
[[nodiscard]] bool is_ssp_prologue_load(const instruction& a, const instruction& b) {
    return a.op == opcode::mov_rm && a.mem.seg == vm::segment::fs &&
           a.mem.disp == core::tls_canary && b.op == opcode::mov_mr &&
           b.mem.base == reg::rbp && b.r2 == a.r1;
}

// SSP epilogue signature (Code 2): xor against the TLS canary, je past a
// __stack_chk_fail call.
[[nodiscard]] bool is_ssp_epilogue_check(const instruction& a, const instruction& b,
                                         const instruction& c,
                                         std::uint64_t chk_fail_addr) {
    return a.op == opcode::xor_rm && a.mem.seg == vm::segment::fs &&
           a.mem.disp == core::tls_canary && b.op == opcode::je &&
           c.op == opcode::call && c.imm == chk_fail_addr;
}

// Plants a 5-byte jmp at a function's entry (Dyninst-style hook), padding
// with nops to preserve the bytes of every absorbed instruction.
void hook_entry(binfmt::linked_binary& binary, binfmt::linked_function& fn,
                std::uint64_t target) {
    std::size_t count = 0;
    std::uint64_t bytes = 0;
    while (count < fn.insns.size() && bytes < 5) {
        bytes += vm::encoded_length(fn.insns[count]);
        ++count;
    }
    if (bytes < 5)
        throw std::runtime_error{"hook_entry: " + fn.name + " shorter than a jmp"};
    instruction hook = jmp(0);
    hook.label = vm::no_id;
    hook.imm = target;
    std::vector<instruction> repl{hook};
    for (std::uint64_t pad = bytes - 5; pad > 0; --pad) repl.push_back(nop());
    binary.replace_range(fn, 0, count, std::move(repl));
}

// The appended __stack_chk_fail: Fig 4's check. rdi carries the packed
// (C0, C1) word; returns with ZF=1 on a match, aborts otherwise.
[[nodiscard]] binfmt::bin_function make_pssp_stack_chk_fail(std::uint64_t fortify_addr) {
    binfmt::bin_function f{"__pssp_stack_chk_fail", /*from_libc=*/true};
    const auto ok = f.new_label();
    instruction fail_call = call_sym(0);
    fail_call.sym = vm::no_id;
    fail_call.imm = fortify_addr;
    // Cold-call penalty of entering the hooked, relocated check on every
    // return (icache miss + hook jmp), mirroring the charge in the dynamic
    // interposer (core/runtime.cpp) so both rewriter flavors land near the
    // paper's "similar runtime performance" observation.
    f.emit(sim_delay(12));
    f.emit({mov_rr(reg::rdx, reg::rdi), shr_ri(reg::rdx, 32),   // C1
            mov_rr(reg::rcx, reg::rdi), shl_ri(reg::rcx, 32),
            shr_ri(reg::rcx, 32),                               // C0
            xor_rr(reg::rcx, reg::rdx),                         // C0 ^ C1
            mov_rm(reg::rdx, fs(core::tls_canary)), shl_ri(reg::rdx, 32),
            shr_ri(reg::rdx, 32),                               // low32(C)
            xor_rr(reg::rcx, reg::rdx),                         // ZF iff equal
            je(ok), fail_call});
    f.place(ok);
    f.emit(ret());
    return f;
}

// The appended fork(): refreshes the packed shadow pair in the child
// (Section V-D: statically linked fork must be replaced because no
// preloaded wrapper can intercept it).
[[nodiscard]] binfmt::bin_function make_pssp_fork() {
    binfmt::bin_function f{"__pssp_fork", /*from_libc=*/true};
    const auto parent = f.new_label();
    const auto retry = f.new_label();
    f.emit({syscall_i(static_cast<std::uint32_t>(vm::syscall_no::sys_fork)),
            test_rr(reg::rax, reg::rax), jne(parent)});
    f.place(retry);
    f.emit({// Child: C0 = fresh 32 bits; C1 = C0 ^ low32(C); repack.
            rdrand(reg::rax), jnc(retry), shl_ri(reg::rax, 32), shr_ri(reg::rax, 32),
            mov_rm(reg::rcx, fs(core::tls_canary)), shl_ri(reg::rcx, 32),
            shr_ri(reg::rcx, 32), xor_rr(reg::rcx, reg::rax), shl_ri(reg::rcx, 32),
            or_rr(reg::rax, reg::rcx), mov_mr(fs(core::tls_shadow_c0), reg::rax),
            // Child returns 0 from fork.
            mov_ri(reg::rax, 0)});
    f.place(parent);
    f.emit(ret());
    return f;
}

}  // namespace

int binary_rewriter::patch_prologues(binfmt::linked_binary& binary,
                                     std::map<std::string, int>* per_function) const {
    int patched = 0;
    for (auto& fn : binary.functions) {
        if (fn.from_libc || fn.appended) continue;
        for (std::size_t i = 0; i + 1 < fn.insns.size(); ++i) {
            if (!is_ssp_prologue_load(fn.insns[i], fn.insns[i + 1])) continue;
            // Code 5: "our tool simply replaces the offset in use" — the
            // shadow pair at %fs:0x2a8 instead of C at %fs:0x28.
            instruction repl = fn.insns[i];
            repl.mem.disp = core::tls_shadow_c0;
            binary.replace_range(fn, i, 1, {repl});
            ++patched;
            if (per_function) ++(*per_function)[fn.name];
        }
    }
    return patched;
}

int binary_rewriter::patch_epilogues(binfmt::linked_binary& binary,
                                     std::map<std::string, int>* per_function) const {
    const auto chk_it = binary.symbols.find(binfmt::sym_stack_chk_fail);
    if (chk_it == binary.symbols.end())
        throw std::runtime_error{"rewriter: binary lacks __stack_chk_fail"};
    const std::uint64_t chk_fail = chk_it->second;

    int patched = 0;
    for (auto& fn : binary.functions) {
        if (fn.from_libc || fn.appended) continue;
        for (std::size_t i = 0; i + 2 < fn.insns.size(); ++i) {
            if (!is_ssp_epilogue_check(fn.insns[i], fn.insns[i + 1], fn.insns[i + 2],
                                       chk_fail))
                continue;
            // Code 6: hand the packed canary word to __stack_chk_fail in
            // rdi (saving/restoring rdi around it) and branch on the ZF it
            // returns. The unreachable abort keeps byte-for-byte length
            // parity with the original xor/je/call (19 bytes each way);
            // the real failure path aborts inside __stack_chk_fail.
            const reg canary_reg = fn.insns[i].r1;  // rdx in compiler output
            instruction taken_je = je(0);
            taken_je.label = vm::no_id;
            taken_je.imm = fn.insns[i + 1].imm;  // original "ok" target
            instruction chk_call = call_sym(0);
            chk_call.sym = vm::no_id;
            chk_call.imm = chk_fail;
            binary.replace_range(fn, i, 3,
                                 {push_r(reg::rdi), mov_rr(reg::rdi, canary_reg),
                                  chk_call, pop_r(reg::rdi), taken_je, trap_abort(),
                                  nop()});
            ++patched;
            if (per_function) ++(*per_function)[fn.name];
        }
    }
    return patched;
}

std::uint64_t binary_rewriter::append_static_support(binfmt::linked_binary& binary,
                                                     rewrite_report& report) const {
    const auto fortify_it = binary.symbols.find(binfmt::sym_fortify_fail);
    if (fortify_it == binary.symbols.end())
        throw std::runtime_error{"rewriter: static binary lacks __GI__fortify_fail"};

    const std::uint64_t before = binary.text_bytes();

    const std::uint64_t chk_entry = binary.append_function(
        "__pssp_stack_chk_fail", make_pssp_stack_chk_fail(fortify_it->second));
    if (auto* orig = binary.find(binfmt::sym_stack_chk_fail)) {
        hook_entry(binary, *orig, chk_entry);
        report.stack_chk_fail_hooked = true;
    }

    const std::uint64_t fork_entry =
        binary.append_function("__pssp_fork", make_pssp_fork());
    if (auto* orig = binary.find(binfmt::sym_fork)) {
        hook_entry(binary, *orig, fork_entry);
        report.fork_hooked = true;
    }

    return binary.text_bytes() - before;
}

rewrite_report binary_rewriter::upgrade_to_pssp(binfmt::linked_binary& binary) const {
    rewrite_report report;
    std::map<std::string, int> patched_fns;
    report.prologues_patched = patch_prologues(binary, &patched_fns);
    report.epilogues_patched = patch_epilogues(binary, &patched_fns);
    for (const auto& fn : binary.functions)
        if (!fn.from_libc && !fn.appended && !patched_fns.contains(fn.name))
            report.skipped_functions.push_back(fn.name);
    if (binary.mode == binfmt::link_mode::static_glibc)
        report.bytes_added = append_static_support(binary, report);
    return report;
}

}  // namespace pssp::rewriter
