// P-SSP-OWF: extension 3 — exposure-resilient canaries via a one-way
// function (Algorithm 3, Codes 8/9).
//
// The stack canary is F(ret || nonce, K): a randomized MAC of the return
// address under a 128-bit key K held in the callee-saved registers
// r12/r13 ("global register variables"), with the timestamp counter as
// the per-frame nonce. Leaking one frame's canary reveals neither K nor
// any other frame's canary; copying a canary between frames fails because
// it is bound to (ret, nonce).
//
// Frame slice (24 bytes, addresses descending from rbp):
//   [rbp-8]   nonce (the rdtsc value; needed by the epilogue's re-check)
//   [rbp-24]  16-byte AES ciphertext (movdqu of xmm15, as in Code 8)

#include "binfmt/stdlib.hpp"
#include "core/canary.hpp"
#include "core/schemes/schemes_internal.hpp"
#include "core/tls_layout.hpp"

namespace pssp::core::detail {

using namespace vm::isa;
using vm::reg;
using vm::xreg;

namespace {

class p_ssp_owf_scheme final : public scheme {
  public:
    explicit p_ssp_owf_scheme(const scheme_options& options) : owf_{options.owf} {}

    scheme_kind kind() const noexcept override { return scheme_kind::p_ssp_owf; }
    std::string name() const override {
        return owf_ == crypto::owf_kind::aes128 ? "P-SSP-OWF (AES-NI)"
                                                : "P-SSP-OWF (SHA-1)";
    }
    std::int32_t stack_canary_bytes() const noexcept override { return 24; }

    // Code 8. The helper call computes xmm15 <- F_{xmm1}(xmm15).
    void emit_prologue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t ct_slot = plan.return_guard().offset;   // rbp-24
        const std::int32_t nonce_slot = ct_slot + 16;              // rbp-8
        f.emit({rdtsc(), shl_ri(reg::rdx, 32), or_rr(reg::rax, reg::rdx),
                mov_mr(mem(reg::rbp, nonce_slot), reg::rax),
                movq_xr(xreg::xmm15, reg::rax),
                movhps_xm(xreg::xmm15, mem(reg::rbp, 8)),  // return address
                movq_xr(xreg::xmm1, reg::r13), punpckhqdq_xr(xreg::xmm1, reg::r12),
                call_sym(img.sym(helper_symbol())),
                movdqu_mx(mem(reg::rbp, ct_slot), xreg::xmm15)});
    }

    // Code 9: re-encrypt (nonce, ret) and compare against the saved
    // ciphertext. Any modification of the return address, the nonce, or
    // the ciphertext produces a mismatch.
    void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                       const frame_plan& plan) const override {
        const std::int32_t ct_slot = plan.return_guard().offset;
        const std::int32_t nonce_slot = ct_slot + 16;
        f.emit({mov_rm(reg::rcx, mem(reg::rbp, nonce_slot)),
                movq_xr(xreg::xmm15, reg::rcx),
                movhps_xm(xreg::xmm15, mem(reg::rbp, 8)),
                movq_xr(xreg::xmm1, reg::r13), punpckhqdq_xr(xreg::xmm1, reg::r12),
                call_sym(img.sym(helper_symbol())),
                cmp128_xm(xreg::xmm15, mem(reg::rbp, ct_slot))});
        emit_check_tail(f, img);
    }

    // Startup: draw the AES key into r12/r13 and back it up in TLS so
    // thread creation can re-seed the new thread's registers.
    void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const override {
        tls_store(m, tls_canary, fresh_tls_canary(rng));
        const std::uint64_t key_lo = rng();
        const std::uint64_t key_hi = rng();
        m.set(reg::r13, key_lo);
        m.set(reg::r12, key_hi);
        tls_store(m, tls_owf_key_lo, key_lo);
        tls_store(m, tls_owf_key_hi, key_hi);
    }

    // fork: registers are cloned with the process image — nothing to do.
    // A *new thread* starts from a fresh register file, so the
    // pthread_create wrapper restores K from the cloned TLS backup.
    void runtime_on_thread_create(vm::machine& thread, crypto::xoshiro256&) const override {
        thread.set(reg::r13, tls_load(thread, tls_owf_key_lo));
        thread.set(reg::r12, tls_load(thread, tls_owf_key_hi));
    }

  private:
    crypto::owf_kind owf_;

    [[nodiscard]] const char* helper_symbol() const noexcept {
        return owf_ == crypto::owf_kind::aes128 ? binfmt::sym_aes_encrypt
                                                : binfmt::sym_sha1_owf;
    }
};

}  // namespace

std::unique_ptr<scheme> make_p_ssp_owf(const scheme_options& options) {
    return std::make_unique<p_ssp_owf_scheme>(options);
}

}  // namespace pssp::core::detail
