// Memory region semantics and the cycle cost model — the two VM pieces the
// other suites exercise only indirectly.

#include <gtest/gtest.h>

#include "vm/cost_model.hpp"
#include "vm/memory.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::memory;
using vm::reg;

TEST(memory, regions_are_disjoint_and_reachable) {
    memory m;
    const auto& lay = m.regions();
    m.store64(lay.globals_base, 1);
    m.store64(lay.stack_top - 8, 2);
    m.store64(lay.tls_base + 0x28, 3);
    EXPECT_EQ(m.load64(lay.globals_base), 1u);
    EXPECT_EQ(m.load64(lay.stack_top - 8), 2u);
    EXPECT_EQ(m.load64(lay.tls_base + 0x28), 3u);
}

TEST(memory, little_endian_byte_order) {
    memory m;
    const auto base = m.regions().globals_base;
    m.store64(base, 0x0102030405060708ull);
    EXPECT_EQ(m.load8(base), 0x08);      // lowest byte at lowest address
    EXPECT_EQ(m.load8(base + 7), 0x01);
    EXPECT_EQ(m.load32(base), 0x05060708u);
}

TEST(memory, faults_on_unmapped_and_straddling_access) {
    memory m;
    EXPECT_THROW((void)m.load64(0x10), vm::mem_fault);
    EXPECT_THROW(m.store8(0x10, 1), vm::mem_fault);
    // One byte past the end of the stack region.
    EXPECT_THROW((void)m.load64(m.regions().stack_top - 4), vm::mem_fault);
    // Region-straddling multi-byte access at the TLS end.
    EXPECT_THROW((void)m.load64(m.regions().tls_base + m.regions().tls_size - 4),
                 vm::mem_fault);
}

TEST(memory, fault_reports_address_and_size) {
    memory m;
    try {
        (void)m.load64(0x1234);
        FAIL() << "expected mem_fault";
    } catch (const vm::mem_fault& f) {
        EXPECT_EQ(f.addr(), 0x1234u);
        EXPECT_EQ(f.size(), 8u);
    }
}

TEST(memory, bulk_io_round_trips) {
    memory m;
    const auto base = m.regions().globals_base + 100;
    std::vector<std::uint8_t> out{1, 2, 3, 4, 5};
    m.write_bytes(base, out);
    std::vector<std::uint8_t> in(5);
    m.read_bytes(base, in);
    EXPECT_EQ(in, out);
}

TEST(memory, contains_checks_full_range) {
    memory m;
    EXPECT_TRUE(m.contains(m.regions().globals_base, 8));
    EXPECT_FALSE(m.contains(m.regions().globals_base + m.regions().globals_size - 4, 8));
    EXPECT_FALSE(m.contains(0, 1));
}

TEST(memory, resident_bytes_counts_all_regions) {
    memory m;
    const auto& lay = m.regions();
    EXPECT_EQ(m.resident_bytes(), lay.globals_size + lay.stack_size + lay.tls_size);
}

TEST(cost_model, calibration_constants_match_table5_inputs) {
    const vm::cost_model costs;
    // These anchor Table V (DESIGN.md §5); changing them silently would
    // invalidate EXPERIMENTS.md.
    EXPECT_EQ(costs.rdrand, 330u);
    EXPECT_EQ(costs.aes_helper, 118u);
    EXPECT_EQ(costs.rdtsc, 24u);
    EXPECT_EQ(costs.cost_of(mov_rr(reg::rax, reg::rcx)), costs.alu);
    EXPECT_EQ(costs.cost_of(rdrand(reg::rax)), costs.rdrand);
    EXPECT_EQ(costs.cost_of(call_sym(0)), costs.call);
    EXPECT_EQ(costs.cost_of(je(0)), costs.branch);
    EXPECT_EQ(costs.cost_of(syscall_i(57)), costs.syscall);
}

TEST(cost_model, sim_delay_charges_its_immediate) {
    const vm::cost_model costs;
    EXPECT_EQ(costs.cost_of(sim_delay(450)), 450u);
}

TEST(cost_model, dbi_tax_applies_to_every_instruction) {
    vm::cost_model costs;
    costs.dbi_tax = 2;
    EXPECT_EQ(costs.cost_of(nop()), costs.alu + 2);
    EXPECT_EQ(costs.cost_of(rdrand(reg::rax)), costs.rdrand + 2);
}

}  // namespace
}  // namespace pssp
