#include "workload/harness.hpp"

#include <stdexcept>

#include "binfmt/stdlib.hpp"
#include "compiler/codegen.hpp"
#include "core/runtime.hpp"
#include "proc/process.hpp"
#include "rewriter/rewriter.hpp"

namespace pssp::workload {

std::string to_string(deployment dep) {
    switch (dep) {
        case deployment::compiler_based: return "compiler";
        case deployment::instrumented_dynamic: return "instr (dynamic)";
        case deployment::instrumented_static: return "instr (static)";
        case deployment::pin_dbi: return "PIN DBI";
    }
    return "?";
}

run_measurement measure_module(const compiler::ir_module& mod, core::scheme_kind kind,
                               const harness_options& options) {
    // Build the binary per deployment.
    binfmt::linked_binary binary = [&] {
        switch (options.dep) {
            case deployment::compiler_based:
            case deployment::pin_dbi:
                return compiler::build_module(
                    mod, core::make_scheme(kind, options.scheme_options),
                    binfmt::link_mode::dynamic_glibc);
            case deployment::instrumented_dynamic:
            case deployment::instrumented_static: {
                // The paper's upgrade path: a legacy SSP binary, rewritten.
                if (kind != core::scheme_kind::p_ssp32 &&
                    kind != core::scheme_kind::ssp && kind != core::scheme_kind::none)
                    throw std::invalid_argument{
                        "instrumented deployments produce P-SSP-32; ask for "
                        "p_ssp32 (or ssp/none baselines)"};
                const auto mode = options.dep == deployment::instrumented_static
                                      ? binfmt::link_mode::static_glibc
                                      : binfmt::link_mode::dynamic_glibc;
                auto legacy = compiler::build_module(
                    mod, core::make_scheme(core::scheme_kind::ssp), mode);
                if (kind == core::scheme_kind::p_ssp32) {
                    rewriter::binary_rewriter rw;
                    (void)rw.upgrade_to_pssp(legacy);
                    if (mode == binfmt::link_mode::dynamic_glibc)
                        core::bind_instrumented_stack_chk_fail(legacy);
                }
                return legacy;
            }
        }
        throw std::logic_error{"unreachable"};
    }();

    // The runtime hooks that accompany each deployment: the compiler build
    // ships the scheme's own hooks; the instrumented builds ship the
    // preloaded P-SSP-32 library (dynamic) or rely on the rewritten fork
    // (static — the runtime still provides process setup, standing in for
    // the injected init section).
    const auto hook_kind = [&] {
        switch (options.dep) {
            case deployment::instrumented_dynamic:
            case deployment::instrumented_static:
                return kind == core::scheme_kind::p_ssp32 ? core::scheme_kind::p_ssp32
                                                          : kind;
            default:
                return kind;
        }
    }();

    proc::process_manager manager{
        core::make_scheme(hook_kind, options.scheme_options), options.seed};
    vm::machine m = manager.create_process(binary);
    if (options.dep == deployment::pin_dbi)
        m.costs().dbi_tax = options.dbi_tax_cycles;

    m.call_function(binary.symbols.at(options.entry));
    m.set_fuel(options.fuel);
    const vm::run_result r = m.run();

    run_measurement out;
    out.cycles = m.cycles();
    out.steps = m.steps();
    out.text_bytes = binary.text_bytes();
    out.resident_bytes = m.mem().resident_bytes();
    out.exit_code = r.exit_code;
    out.completed = r.status == vm::exec_status::exited;
    return out;
}

}  // namespace pssp::workload
