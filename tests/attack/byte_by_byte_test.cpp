// Integration tests of the paper's central security claims (Sections II-B,
// III-C, VI-C): the byte-by-byte attack versus a forking server compiled
// under each scheme.

#include <gtest/gtest.h>

#include "attack/byte_by_byte.hpp"
#include "compiler/codegen.hpp"
#include "core/tls_layout.hpp"
#include "proc/fork_server.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

struct oracle {
    binfmt::linked_binary binary;
    proc::fork_server server;

    oracle(scheme_kind kind, std::uint64_t seed = 99,
           workload::server_profile profile = workload::nginx_profile())
        : binary{compiler::build_module(workload::make_server_module(profile),
                                        core::make_scheme(kind))},
          server{binary, core::make_scheme(kind), seed,
                 workload::server_config_for(profile)} {}

    [[nodiscard]] std::uint64_t win_addr() const { return binary.symbols.at("win"); }
    [[nodiscard]] std::uint64_t some_stack_addr() const {
        return binary.data_base;  // any mapped value works for the fake rbp
    }
};

TEST(fork_server, benign_requests_are_served) {
    oracle o{scheme_kind::ssp};
    for (int i = 0; i < 5; ++i) {
        const auto r = o.server.serve("GET /index.html");
        EXPECT_EQ(r.outcome, proc::worker_outcome::ok) << to_string(r.outcome);
        EXPECT_FALSE(r.output.empty());  // the response write
    }
    EXPECT_TRUE(o.server.alive());
    EXPECT_EQ(o.server.crashes(), 0u);
}

TEST(fork_server, benign_requests_served_under_p_ssp) {
    oracle o{scheme_kind::p_ssp};
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(o.server.serve("GET /").outcome, proc::worker_outcome::ok);
}

// The RAF-SSP correctness bug (Section II-C caveat, Table I): the child
// crashes returning through frames inherited from the parent, on BENIGN
// traffic.
TEST(fork_server, raf_ssp_crashes_workers_on_benign_traffic) {
    oracle o{scheme_kind::raf_ssp};
    const auto r = o.server.serve("GET /index.html");
    EXPECT_EQ(r.outcome, proc::worker_outcome::crashed_canary) << to_string(r.outcome);
}

// Section VII-C's rejected "C0 in the TLS" design shares RAF's disease:
// replacing the child's C0 invalidates every inherited C1 — "the program
// is doomed to crash". A measured negative result, not a rhetorical one.
TEST(fork_server, rejected_c0tls_design_crashes_like_raf) {
    oracle o{scheme_kind::p_ssp_c0tls};
    const auto r = o.server.serve("GET /index.html");
    EXPECT_EQ(r.outcome, proc::worker_outcome::crashed_canary) << to_string(r.outcome);
}

// DynaGuard and DCR fix that bug by rewriting inherited canaries.
TEST(fork_server, dynaguard_workers_survive_benign_traffic) {
    oracle o{scheme_kind::dynaguard};
    EXPECT_EQ(o.server.serve("GET /").outcome, proc::worker_outcome::ok);
}

TEST(fork_server, dcr_workers_survive_benign_traffic) {
    oracle o{scheme_kind::dcr};
    EXPECT_EQ(o.server.serve("GET /").outcome, proc::worker_outcome::ok);
}

TEST(fork_server, overflowing_request_crashes_worker_but_not_server) {
    oracle o{scheme_kind::ssp};
    const std::vector<std::uint8_t> smash(200, 'A');
    const auto r = o.server.serve(smash);
    EXPECT_EQ(r.outcome, proc::worker_outcome::crashed_canary);
    EXPECT_TRUE(o.server.alive());  // master forks a fresh worker
    EXPECT_EQ(o.server.serve("GET /").outcome, proc::worker_outcome::ok);
}

// ---- The headline experiment -------------------------------------------------

TEST(byte_by_byte, defeats_ssp_in_about_a_thousand_trials) {
    oracle o{scheme_kind::ssp};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(workload::nginx_profile());
    cfg.canary_bytes = 8;
    attack::byte_by_byte atk{o.server, cfg};

    const auto campaign = atk.run_campaign(o.win_addr(), o.some_stack_addr());
    ASSERT_TRUE(campaign.recovery.canary_recovered);
    EXPECT_TRUE(campaign.hijacked);
    // Expected 8 * 2^7 = 1024; allow generous slack, but it must be far
    // below anything resembling a 64-bit search.
    EXPECT_LE(campaign.total_trials, 8u * 256u + 1u);
    EXPECT_GE(campaign.total_trials, 8u);

    // Cross-check: the recovered bytes are the server's actual TLS canary.
    std::uint64_t recovered = 0;
    for (int i = 7; i >= 0; --i)
        recovered = (recovered << 8) | campaign.recovery.canary[static_cast<size_t>(i)];
    EXPECT_EQ(recovered, core::tls_load(o.server.master(), core::tls_canary));
}

TEST(byte_by_byte, defeats_dynaguard_free_running_canary_no_wait_it_does_not) {
    // DynaGuard renews the canary per fork: the attack must fail exactly
    // like it does against P-SSP (Table I, "BROP Prevention: Yes").
    oracle o{scheme_kind::dynaguard};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(workload::nginx_profile());
    cfg.canary_bytes = 8;
    cfg.max_trials = 6'000;
    attack::byte_by_byte atk{o.server, cfg};
    const auto campaign = atk.run_campaign(o.win_addr(), o.some_stack_addr());
    EXPECT_FALSE(campaign.hijacked);
}

class bbb_defense_test : public ::testing::TestWithParam<scheme_kind> {};

INSTANTIATE_TEST_SUITE_P(pssp_family, bbb_defense_test,
                         ::testing::Values(scheme_kind::p_ssp, scheme_kind::p_ssp_nt,
                                           scheme_kind::p_ssp32,
                                           scheme_kind::p_ssp_gb,
                                           scheme_kind::p_ssp_owf),
                         [](const ::testing::TestParamInfo<scheme_kind>& info) {
                             std::string name = core::to_string(info.param);
                             for (char& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

// Against every P-SSP variant the attack's advantage never accumulates:
// the campaign burns its (bounded) budget and the hijack never lands.
TEST_P(bbb_defense_test, byte_by_byte_fails) {
    oracle o{GetParam()};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(workload::nginx_profile());
    // 16-byte canary area for the pair schemes, 8 for packed/GB, 24 for OWF
    // — the attack targets the widest to be maximally generous.
    cfg.canary_bytes = 16;
    cfg.max_trials = 5'000;  // ~5x the SSP-breaking budget
    attack::byte_by_byte atk{o.server, cfg};

    const auto campaign = atk.run_campaign(o.win_addr(), o.some_stack_addr());
    EXPECT_FALSE(campaign.hijacked) << core::to_string(GetParam());
}

// Sanity check for the attack harness itself: with protection disabled the
// very first exploit attempt (no canary to guess) hijacks control.
TEST(byte_by_byte, unprotected_server_is_hijacked_immediately) {
    oracle o{scheme_kind::none};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(workload::nginx_profile());
    attack::byte_by_byte atk{o.server, cfg};
    // No canary: overflow straight through saved rbp into the return slot.
    const auto r = atk.exploit({}, o.some_stack_addr(), o.win_addr());
    EXPECT_EQ(r.outcome, proc::worker_outcome::hijacked) << to_string(r.outcome);
}

}  // namespace
}  // namespace pssp
