// Shared plumbing for the benchmark binaries: every bench regenerates one
// of the paper's tables or figures and prints it via util::text_table /
// util::bar_chart, plus a short "paper vs measured" note that
// EXPERIMENTS.md quotes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "compiler/codegen.hpp"
#include "core/runtime.hpp"
#include "core/scheme.hpp"
#include "proc/fork_server.hpp"
#include "rewriter/rewriter.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/harness.hpp"
#include "workload/webserver.hpp"

namespace pssp::bench {

inline void print_header(const std::string& what, const std::string& paper_ref) {
    std::printf("================================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("================================================================\n\n");
}

// Builds a fork server for `profile` under `kind`, compiler-based.
struct server_under_test {
    binfmt::linked_binary binary;
    proc::fork_server server;

    server_under_test(const workload::server_profile& profile, core::scheme_kind kind,
                      std::uint64_t seed)
        : binary{compiler::build_module(workload::make_server_module(profile),
                                        core::make_scheme(kind))},
          server{binary, core::make_scheme(kind), seed,
                 workload::server_config_for(profile)} {}
};

// Same, but via the instrumentation path: SSP build -> rewriter -> P-SSP-32
// with the preloaded runtime (dynamic linking).
struct instrumented_server_under_test {
    binfmt::linked_binary binary;
    proc::fork_server server;

    static binfmt::linked_binary make_binary(const workload::server_profile& profile) {
        auto legacy = compiler::build_module(workload::make_server_module(profile),
                                             core::make_scheme(core::scheme_kind::ssp));
        rewriter::binary_rewriter rw;
        (void)rw.upgrade_to_pssp(legacy);
        core::bind_instrumented_stack_chk_fail(legacy);
        return legacy;
    }

    instrumented_server_under_test(const workload::server_profile& profile,
                                   std::uint64_t seed)
        : binary{make_binary(profile)},
          server{binary, core::make_scheme(core::scheme_kind::p_ssp32), seed,
                 workload::server_config_for(profile)} {}
};

}  // namespace pssp::bench
