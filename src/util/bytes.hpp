// Little-endian byte packing helpers shared by the VM, the canary schemes,
// and the binary rewriter. The whole simulated platform is little-endian,
// matching x86-64 where the paper's byte-by-byte attack guesses the canary
// starting from its lowest-addressed (least significant) byte.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pssp::util {

// Reads a little-endian u16/u32/u64 from `bytes` (must be large enough).
[[nodiscard]] std::uint16_t load_le16(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::uint32_t load_le32(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::uint64_t load_le64(std::span<const std::uint8_t> bytes);

// Writes a little-endian u16/u32/u64 into `bytes` (must be large enough).
void store_le16(std::span<std::uint8_t> bytes, std::uint16_t value);
void store_le32(std::span<std::uint8_t> bytes, std::uint32_t value);
void store_le64(std::span<std::uint8_t> bytes, std::uint64_t value);

// Extracts byte `index` (0 = least significant) of `value`.
[[nodiscard]] constexpr std::uint8_t byte_of(std::uint64_t value, unsigned index) noexcept {
    return static_cast<std::uint8_t>(value >> (8 * index));
}

// Replaces byte `index` (0 = least significant) of `value` with `byte`.
[[nodiscard]] constexpr std::uint64_t with_byte(std::uint64_t value, unsigned index,
                                                std::uint8_t byte) noexcept {
    const std::uint64_t mask = ~(std::uint64_t{0xff} << (8 * index));
    return (value & mask) | (std::uint64_t{byte} << (8 * index));
}

// FNV-1a 64 over a byte string. The integrity hash used by the dist wire
// spec digest and the checkpoint log's per-line guards: not cryptographic,
// but a single flipped character (even one hexfloat mantissa digit) always
// changes it, which is exactly what "fail loudly, never merge corruption"
// needs.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

// Fixed-width 16-digit lowercase hex of a 64-bit word, appended without a
// prefix — the integrity-hash wire form shared by the dist checkpoint log
// and the store ingest log ("{...,\"fnv\":\"<16hex>\"}").
void append_hex16(std::string& out, std::uint64_t value);

// Parses exactly 16 lowercase hex digits; false on any other input.
[[nodiscard]] bool parse_hex16(std::string_view text, std::uint64_t& value);

// Hex string of a byte span, e.g. "de ad be ef".
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

// Hex string of a 64-bit word, e.g. "0x00007ffc9a3b1c28".
[[nodiscard]] std::string hex64(std::uint64_t value);

// Multi-line hex dump with addresses, 16 bytes per line, starting at `base`.
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> bytes,
                                   std::uint64_t base = 0);

}  // namespace pssp::util
