// The dist/ wire format: what crosses the pipe between the orchestrator
// and its campaign workers.
//
// Three message kinds, all deterministic JSON (util/json emitters):
//
//  * spec JSON (parent -> worker stdin, fixed allocation): the full
//    campaign_spec, including the execution knobs (jobs, reuse_masters)
//    the orchestrator sets per shard. Enum lists travel as their
//    to_string names.
//
//  * round job JSON (parent -> worker stdin, adaptive allocation): the
//    spec plus this round's block manifest for the worker — the round
//    number, the spec digest, and the explicit canonical blocks the
//    worker must run. In an adaptive campaign the block set is decided by
//    the allocator between rounds, so workers cannot derive it from
//    (spec, shard index) the way the fixed plan_shard split does.
//
//  * partial report JSON (worker stdout -> parent): the shard's per-block
//    campaign::cell_partial states in the shard's canonical block order,
//    under a header naming the shard, the round (0 for fixed runs), and
//    the spec digest. Doubles travel as hexfloat strings — bit-exact
//    round trip — because the parent re-merges them and a single flipped
//    mantissa bit would break the sharded-equals-single-process
//    byte-identity contract. The digest covers the outcome-relevant spec
//    fields so a worker that somehow ran a different campaign is
//    rejected, not merged.
//
// collect_block_partials() validates exactly-once coverage of any block
// subset (a whole campaign, or one adaptive round); merge_partials() is
// that over blocks_for(spec) plus campaign::assemble_report — the same
// code path the in-process engine ends in.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "util/json.hpp"

namespace pssp::dist {

// v2: adaptive rounds — partial headers carry "round", specs carry the
// adaptive knobs, and the round-job message exists.
inline constexpr std::uint32_t wire_version = 2;

// ---- campaign_spec <-> JSON ----
[[nodiscard]] std::string spec_to_json(const campaign::campaign_spec& spec);
[[nodiscard]] campaign::campaign_spec spec_from_json(std::string_view text);

// The spec as a bare JSON object body (no wrapper key) — shared by the
// standalone spec message, the round-job message, and the result store's
// manifest (store/format.hpp), so the encodings can never drift.
void append_spec_object(std::string& out, const campaign::campaign_spec& spec);
[[nodiscard]] campaign::campaign_spec spec_from_object(const util::json_value& s);

// FNV-1a 64 over the outcome-relevant spec fields (schemes, attacks,
// targets, trials, seed, budget, unknown bits, scheme options). The
// execution knobs jobs/reuse_masters are deliberately excluded: the
// orchestrator retunes them per shard, and they never move a report byte.
[[nodiscard]] std::uint64_t spec_digest(const campaign::campaign_spec& spec);

// ---- adaptive round job (spec + block manifest) <-> JSON ----
// One shard's work order for one adaptive round: run exactly these
// canonical blocks. The manifest travels with the spec in a single
// self-contained document so a round worker needs nothing but its stdin.
struct round_manifest {
    std::uint64_t round = 0;   // 1-based round number
    std::uint64_t digest = 0;  // spec_digest of the owning spec
    std::vector<campaign::block_ref> blocks;  // ascending block index
};

struct round_job {
    campaign::campaign_spec spec;
    round_manifest manifest;
};

[[nodiscard]] std::string round_job_to_json(const round_job& job);
[[nodiscard]] round_job round_job_from_json(std::string_view text);

// ---- partial report <-> JSON ----
struct partial_block {
    std::uint64_t index = 0;  // position in campaign::blocks_for(spec)
    std::uint64_t cell = 0;   // owning cell (redundant; validated on merge)
    campaign::cell_partial partial;
};

struct partial_report {
    std::uint32_t shard_index = 0;
    std::uint32_t shard_count = 0;
    std::uint64_t round = 0;   // adaptive round number; 0 = fixed allocation
    std::uint64_t digest = 0;  // spec_digest of the spec the shard ran
    std::vector<partial_block> blocks;
};

[[nodiscard]] std::string partial_to_json(const partial_report& partial);
[[nodiscard]] partial_report partial_from_json(std::string_view text);

// One partial block as a bare JSON object (hexfloat-exact Welford state),
// and back. Shared by the partial message and the dist checkpoint log
// (dist/checkpoint.hpp) so the two serializations can never drift — a
// checkpointed block round-trips through exactly the bytes a live shard
// would have put on the pipe.
void append_partial_block(std::string& out, const partial_block& block);
[[nodiscard]] partial_block partial_block_from_json(const util::json_value& v);

// Validates that `partials` covers `blocks` (any subset of the canonical
// block space, ascending by index — a whole fixed campaign or one adaptive
// round) exactly once, with matching digests, cells, trial counts, and
// round numbers, and returns the cell partials index-aligned with
// `blocks`. Throws std::runtime_error naming the first offending block or
// shard — trials are never silently dropped or double-counted.
[[nodiscard]] std::vector<campaign::cell_partial> collect_block_partials(
    const campaign::campaign_spec& spec,
    std::span<const campaign::block_ref> blocks,
    std::span<const partial_report> partials, std::uint64_t expected_round);

// Merges shard partials into the canonical campaign_report. Throws
// std::runtime_error if any block is missing or duplicated, a digest
// mismatches the spec, or a block's cell disagrees with the plan —
// a sharded run either reproduces the single-process report exactly or
// fails loudly; it never silently drops trials.
[[nodiscard]] campaign::campaign_report merge_partials(
    const campaign::campaign_spec& spec,
    std::span<const partial_report> partials);

}  // namespace pssp::dist
