#include "workload/spec.hpp"

namespace pssp::workload {

using namespace compiler;

const std::vector<spec_profile>& spec2006_profiles() {
    // inner_iters spans ~40x between the most call-intensive and the most
    // loop-intensive program; protected_kernels varies the share of calls
    // that actually pay for a canary. outer_iters keeps every program at
    // roughly 1-2M interpreted instructions so a full Figure-5 sweep stays
    // in seconds.
    static const std::vector<spec_profile> profiles = {
        // ---- SPECint ----
        {"400.perlbench_m", 40, 3, 3, 380, true},
        {"401.bzip2_m", 120, 2, 1, 220, true},
        {"403.gcc_m", 60, 3, 2, 260, true},
        {"429.mcf_m", 400, 2, 1, 70, true},
        {"445.gobmk_m", 80, 3, 2, 200, true},
        {"456.hmmer_m", 250, 2, 1, 110, true},
        {"458.sjeng_m", 100, 3, 2, 160, true},
        {"462.libquantum_m", 900, 1, 1, 60, true},
        {"464.h264ref_m", 200, 2, 2, 130, true},
        {"471.omnetpp_m", 70, 3, 1, 230, true},
        {"473.astar_m", 150, 2, 1, 170, true},
        {"483.xalancbmk_m", 50, 3, 2, 300, true},
        // ---- SPECfp ----
        {"410.bwaves_m", 1200, 1, 1, 45, false},
        {"433.milc_m", 700, 2, 1, 40, false},
        {"434.zeusmp_m", 800, 1, 1, 65, false},
        {"435.gromacs_m", 350, 2, 1, 75, false},
        {"436.cactusADM_m", 1000, 1, 1, 55, false},
        {"437.leslie3d_m", 900, 1, 1, 60, false},
        {"444.namd_m", 600, 2, 1, 45, false},
        {"447.dealII_m", 180, 3, 2, 100, false},
        {"450.soplex_m", 280, 2, 1, 95, false},
        {"453.povray_m", 90, 3, 3, 180, false},
        {"454.calculix_m", 450, 2, 1, 60, false},
        {"459.GemsFDTD_m", 850, 1, 1, 60, false},
        {"465.tonto_m", 320, 2, 2, 85, false},
        {"470.lbm_m", 1600, 1, 1, 35, false},
        {"481.wrf_m", 500, 2, 1, 55, false},
        {"482.sphinx3_m", 220, 2, 1, 120, false},
    };
    return profiles;
}

namespace {

void add_lcg_round(std::vector<stmt>& body, int acc, int tmp) {
    body.push_back(compute_stmt{acc, local_ref{acc}, binop::mul,
                                const_ref{6364136223846793005ull}});
    body.push_back(compute_stmt{acc, local_ref{acc}, binop::add,
                                const_ref{1442695040888963407ull}});
    body.push_back(compute_stmt{tmp, local_ref{acc}, binop::shr, const_ref{29}});
    body.push_back(compute_stmt{acc, local_ref{acc}, binop::xor_, local_ref{tmp}});
}

}  // namespace

namespace {

// Cold utility code: never executed, but linked — the bulk of any real
// binary's .text. Without it every per-function canary instruction would
// be measured against a few hundred bytes of text and Table II's
// sub-percent expansion rates would be meaningless. The count varies per
// program (deterministically) the way SPEC binaries vary in size.
void add_cold_text(ir_module& mod, const spec_profile& profile) {
    const std::size_t count =
        16 + (profile.name.size() * 7 + profile.inner_iters) % 20;
    for (std::size_t u = 0; u < count; ++u) {
        auto& fn = mod.add_function("util_" + std::to_string(u));
        const int a = add_local(fn, "a");
        const int b = add_local(fn, "b");
        fn.param_count = 2;
        for (int round = 0; round < 4; ++round) {
            fn.body.push_back(compute_stmt{a, local_ref{a}, binop::mul,
                                           const_ref{0x100000001b3ull + u}});
            fn.body.push_back(compute_stmt{a, local_ref{a}, binop::xor_, local_ref{b}});
            fn.body.push_back(
                compute_stmt{b, local_ref{b}, binop::add,
                             const_ref{static_cast<std::uint64_t>(round + 1)}});
            fn.body.push_back(compute_stmt{a, local_ref{a}, binop::shr,
                                           const_ref{static_cast<std::uint64_t>(
                                               7 + round)}});
        }
        fn.body.push_back(return_stmt{local_ref{a}});
    }
}

}  // namespace

compiler::ir_module make_spec_module(const spec_profile& profile) {
    ir_module mod;
    mod.name = profile.name;
    mod.add_global("g_result", 8);
    mod.add_global("g_table", 256);  // lookup-table analog for load traffic
    add_cold_text(mod, profile);

    for (int k = 0; k < profile.kernels; ++k) {
        auto& kern = mod.add_function("kernel_" + std::to_string(k));
        const bool wants_buffer = k < profile.protected_kernels;
        int buf = -1;
        if (wants_buffer)
            buf = add_local(kern, "scratch", 32, /*is_buffer=*/true);
        const int acc = add_local(kern, "acc");
        const int tmp = add_local(kern, "tmp");
        const int i = add_local(kern, "i");
        kern.param_count = 1;  // seed arrives in rdi -> locals[0]... see below

        // Parameter convention: locals[0] receives rdi. For buffer kernels
        // locals[0] is the buffer, so route the seed via a dedicated first
        // local instead: simplest is no parameters at all — seed from the
        // global result cell, accumulate back into it.
        kern.param_count = 0;
        kern.body.push_back(load_global_stmt{acc, "g_result", 0});

        if (wants_buffer) {
            // Touch the buffer like real code would (zero a header), which
            // also exercises the LV write-site check when enabled.
            kern.body.push_back(call_stmt{
                "memset", {addr_of{buf}, const_ref{0}, const_ref{16}},
                std::nullopt, /*writes_memory=*/true});
        }

        loop_stmt work{i, profile.inner_iters, {}};
        add_lcg_round(work.body, acc, tmp);
        kern.body.push_back(work);

        kern.body.push_back(load_global_stmt{tmp, "g_table",
                                             static_cast<std::int32_t>(8 * (k % 8))});
        kern.body.push_back(
            compute_stmt{acc, local_ref{acc}, binop::add, local_ref{tmp}});
        kern.body.push_back(store_global_stmt{"g_result", 0, local_ref{acc}});
        kern.body.push_back(return_stmt{local_ref{acc}});
    }

    auto& main_fn = mod.add_function("main");
    const int r = add_local(main_fn, "r");
    const int i = add_local(main_fn, "i");
    main_fn.body.push_back(assign_stmt{r, const_ref{1}});
    main_fn.body.push_back(store_global_stmt{"g_result", 0, local_ref{r}});

    loop_stmt driver{i, profile.outer_iters, {}};
    for (int k = 0; k < profile.kernels; ++k)
        driver.body.push_back(call_stmt{"kernel_" + std::to_string(k), {}, r});
    main_fn.body.push_back(driver);
    main_fn.body.push_back(return_stmt{local_ref{r}});

    return mod;
}

}  // namespace pssp::workload
