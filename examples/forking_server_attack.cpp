// The paper's motivating scenario, end to end: a forking network server
// under the byte-by-byte attack (Section II-B), first compiled with stock
// SSP (the attack wins in ~8*2^7 trials), then with P-SSP (the attack's
// advantage never accumulates).
//
//   $ ./forking_server_attack

#include <cstdio>

#include "attack/byte_by_byte.hpp"
#include "compiler/codegen.hpp"
#include "proc/fork_server.hpp"
#include "util/bytes.hpp"
#include "workload/webserver.hpp"

using namespace pssp;

namespace {

void attack_server(core::scheme_kind kind, unsigned canary_bytes,
                   std::uint64_t trial_budget) {
    const auto profile = workload::nginx_profile();
    const auto binary = compiler::build_module(workload::make_server_module(profile),
                                               core::make_scheme(kind));
    proc::fork_server server{binary, core::make_scheme(kind), /*seed=*/7,
                             workload::server_config_for(profile)};

    std::printf("---- %s-compiled %s ----\n", core::to_string(kind).c_str(),
                profile.name.c_str());
    std::printf("  warm-up: 3 benign requests ... ");
    for (int i = 0; i < 3; ++i) (void)server.serve("GET / HTTP/1.1");
    std::printf("served, %llu crashes\n",
                static_cast<unsigned long long>(server.crashes()));

    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = canary_bytes;
    cfg.max_trials = trial_budget;
    attack::byte_by_byte atk{server, cfg};

    const auto campaign =
        atk.run_campaign(binary.symbols.at("win"), binary.data_base);
    if (campaign.recovery.canary_recovered) {
        std::printf("  canary recovered in %llu trials: %s\n",
                    static_cast<unsigned long long>(campaign.recovery.trials),
                    util::to_hex(campaign.recovery.canary).c_str());
        std::printf("  per-byte trials:");
        for (const auto t : campaign.recovery.trials_per_byte) std::printf(" %u", t);
        std::printf("\n");
    } else {
        std::printf("  canary NOT recovered within %llu trials "
                    "(%llu workers crashed underneath the attack)\n",
                    static_cast<unsigned long long>(campaign.recovery.trials),
                    static_cast<unsigned long long>(campaign.recovery.worker_crashes));
    }
    std::printf("  control-flow hijack: %s\n\n",
                campaign.hijacked ? ">>> SUCCESS — attacker code ran <<<"
                                  : "defeated");
}

}  // namespace

int main() {
    std::printf("Byte-by-byte attack vs a fork-per-request server\n");
    std::printf("(the master forks a worker per request; crashed workers are\n");
    std::printf(" reaped and replaced — a free crash oracle for the attacker)\n\n");

    // SSP: every worker inherits the same canary; guesses accumulate.
    attack_server(core::scheme_kind::ssp, 8, 4000);

    // P-SSP: each fork re-randomizes the (C0, C1) split of the unchanged
    // TLS canary; a surviving guess today says nothing about tomorrow.
    attack_server(core::scheme_kind::p_ssp, 16, 4000);

    std::printf("Expected: SSP falls in roughly 8*2^7 = 1024 trials;\n");
    std::printf("P-SSP survives the full budget (Theorem 1: no accumulation).\n");
    return 0;
}
