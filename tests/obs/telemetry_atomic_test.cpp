// The telemetry writer's line-atomicity contract: each JSONL line —
// trailing newline included — goes down in a single write(2) on an
// unbuffered fd, so a concurrent reader (campaign_query --follow, the
// store tailer, tail -f) only ever observes complete lines. A reader
// hammering the file while a writer appends must never see a torn line,
// and every line it does see must be byte-for-byte the writer's output.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "obs/telemetry.hpp"
#include "util/fsio.hpp"

namespace pssp {
namespace {

obs::round_summary summary_for(std::uint64_t round) {
    obs::round_summary s;
    s.round = round;
    s.blocks = 2 + round % 3;
    s.trials = 64 * (round + 1);
    s.cumulative_trials = 64 * (round + 1) * (round + 2) / 2;
    s.max_halfwidth = 1.0 / static_cast<double>(round + 2);
    s.widest_cell = "nginx_m/SSP/leak_replay";
    s.wall_seconds = 0.25 * static_cast<double>(round % 7);
    if (round % 2 == 0) {
        s.shards.push_back({0, 0.5, 0.25, 0.125, {}});
        s.shards.push_back({1, 0.75, 0.5, 0.125, {}});
    }
    s.retries = round % 5;
    s.requeued_blocks = round % 4;
    s.resumed = round % 6 == 0;
    return s;
}

TEST(obs_telemetry_atomic, file_is_the_exact_line_concatenation) {
    const std::string path = ::testing::TempDir() + "pssp-telemetry-" +
                             std::to_string(::getpid()) + "-exact.jsonl";
    std::string expected;
    {
        obs::telemetry_writer writer;
        ASSERT_TRUE(writer.open(path));
        for (std::uint64_t r = 0; r < 32; ++r) {
            writer.append(summary_for(r));
            expected += obs::round_summary_json(summary_for(r)) + "\n";
        }
    }
    std::string on_disk;
    ASSERT_TRUE(util::read_file(path, on_disk));
    EXPECT_EQ(on_disk, expected);
}

TEST(obs_telemetry_atomic, concurrent_reader_never_sees_a_torn_line) {
    const std::string path = ::testing::TempDir() + "pssp-telemetry-" +
                             std::to_string(::getpid()) + "-race.jsonl";
    ::unlink(path.c_str());  // the reader must never see a stale file
    constexpr std::uint64_t kRounds = 400;

    // Precompute what every line must look like; the reader checks each
    // observed line against this table by index.
    std::vector<std::string> lines;
    for (std::uint64_t r = 0; r < kRounds; ++r)
        lines.push_back(obs::round_summary_json(summary_for(r)));

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> torn{0}, mismatched{0}, observed{0};

    std::thread reader{[&] {
        // pread from offset 0 each pass: every pass races a fresh read
        // window against in-flight appends.
        std::string buf;
        while (true) {
            const bool writer_done = done.load(std::memory_order_acquire);
            const int fd = ::open(path.c_str(), O_RDONLY);
            if (fd >= 0) {
                buf.clear();
                char chunk[4096];
                ssize_t n;
                while ((n = ::read(fd, chunk, sizeof chunk)) > 0)
                    buf.append(chunk, static_cast<std::size_t>(n));
                ::close(fd);

                std::size_t start = 0, index = 0;
                while (true) {
                    const auto nl = buf.find('\n', start);
                    if (nl == std::string::npos) break;
                    const auto line = buf.substr(start, nl - start);
                    if (index >= lines.size() || line != lines[index])
                        mismatched.fetch_add(1);
                    observed.fetch_add(1);
                    start = nl + 1;
                    ++index;
                }
                // Anything after the last newline would be a torn line:
                // the single-write(2) contract says it cannot exist.
                if (start != buf.size()) torn.fetch_add(1);
            }
            if (writer_done) break;
        }
    }};

    {
        obs::telemetry_writer writer;
        ASSERT_TRUE(writer.open(path));
        for (std::uint64_t r = 0; r < kRounds; ++r)
            writer.append(summary_for(r));
    }
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(torn.load(), 0u) << "reader saw a partial line";
    EXPECT_EQ(mismatched.load(), 0u);
    // The final pass (after the writer closed) saw the whole file.
    EXPECT_GE(observed.load(), kRounds);
}

}  // namespace
}  // namespace pssp
