#include "analysis/cfg.hpp"

#include <algorithm>

#include "vm/dispatch.hpp"

namespace pssp::analysis {

namespace {

using vm::opcode;

[[nodiscard]] bool is_cond_branch(opcode op) noexcept {
    switch (op) {
        case opcode::je:
        case opcode::jne:
        case opcode::jb:
        case opcode::jae:
        case opcode::jl:
        case opcode::jge:
        case opcode::jnc:
            return true;
        default:
            return false;
    }
}

// Opcodes that end a basic block. `leave` does not: it only edits the
// frame registers; control continues to the next instruction.
[[nodiscard]] bool is_terminator(opcode op) noexcept {
    switch (op) {
        case opcode::jmp:
        case opcode::call:
        case opcode::ret:
        case opcode::hlt:
        case opcode::trap_abort:
            return true;
        default:
            return is_cond_branch(op);
    }
}

}  // namespace

cfg cfg::recover(const vm::program& prog) {
    const auto n = static_cast<std::uint32_t>(prog.insns.size());
    cfg g;
    g.block_of_.assign(n, vm::no_id);
    if (n == 0) return g;

    // ---- Leader discovery ----------------------------------------------
    std::vector<char> leader(n, 0);
    leader.at(0) = 1;
    for (const auto& [name, addr] : prog.symbols) {
        (void)name;
        const auto idx = prog.index_of(addr);
        if (idx != vm::no_id) leader[idx] = 1;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        const auto op = prog.insns[i].op;
        if (!is_terminator(op)) continue;
        if (i + 1 < n) leader[i + 1] = 1;
        const auto target = prog.flow[i].target;
        if (target != vm::no_id && target < n) leader[target] = 1;
        if (op == opcode::call) {
            const auto cont = prog.index_of(prog.flow[i].return_addr);
            if (cont != vm::no_id) leader[cont] = 1;
        }
    }

    // ---- Block formation -----------------------------------------------
    for (std::uint32_t i = 0; i < n; ++i) {
        if (leader[i]) {
            basic_block b;
            b.first = i;
            g.blocks_.push_back(b);
        }
        auto& cur = g.blocks_.back();
        ++cur.count;
        g.block_of_[i] = static_cast<std::uint32_t>(g.blocks_.size() - 1);
    }

    // ---- Fused-pair walls (vm::handler_width metadata) -------------------
    const bool have_code = prog.code.size() == n + 1;
    for (auto& b : g.blocks_) {
        if (!have_code) break;
        if (vm::handler_width(prog.code[b.last()].handler) == 2) b.fused_tail = true;
        if (b.first > 0 && vm::handler_width(prog.code[b.first - 1].handler) == 2)
            b.fused_entry = true;
    }

    // ---- Successor edges -------------------------------------------------
    const auto add_edge = [&](basic_block& from, std::uint32_t to_index,
                              edge_kind kind) {
        if (to_index >= n) return;
        const auto to_block = g.block_of_[to_index];
        for (const auto& e : from.succs)
            if (e.to == to_block && e.kind == kind) return;
        from.succs.push_back({to_block, kind});
    };

    for (auto& b : g.blocks_) {
        const auto i = b.last();
        const auto op = prog.insns[i].op;
        const auto target = prog.flow[i].target;
        if (op == opcode::jmp) {
            if (target != vm::no_id)
                add_edge(b, target, edge_kind::branch_taken);
            else
                b.unknown_successors = true;
        } else if (is_cond_branch(op)) {
            if (target != vm::no_id)
                add_edge(b, target, edge_kind::branch_taken);
            else
                b.unknown_successors = true;
            if (i + 1 < n)
                add_edge(b, i + 1, edge_kind::fallthrough);
            else
                b.unknown_successors = true;  // falls onto the sentinel trap
        } else if (op == opcode::call) {
            if (target != vm::no_id) add_edge(b, target, edge_kind::call_target);
            const auto cont = prog.index_of(prog.flow[i].return_addr);
            if (cont != vm::no_id)
                add_edge(b, cont, edge_kind::call_return);
            else
                b.unknown_successors = true;
        } else if (op == opcode::ret || op == opcode::hlt ||
                   op == opcode::trap_abort) {
            b.unknown_successors = true;
        } else {
            // A non-terminator last instruction: the block ends only because
            // the next instruction is a leader (or the stream ends).
            if (i + 1 < n)
                add_edge(b, i + 1, edge_kind::fallthrough);
            else
                b.unknown_successors = true;  // falls onto the sentinel trap
        }
    }

    for (std::uint32_t id = 0; id < g.blocks_.size(); ++id)
        for (const auto& e : g.blocks_[id].succs) g.blocks_[e.to].preds.push_back(id);
    for (auto& b : g.blocks_) {
        std::sort(b.preds.begin(), b.preds.end());
        b.preds.erase(std::unique(b.preds.begin(), b.preds.end()), b.preds.end());
    }
    return g;
}

bool cfg::covers_transfer(std::uint32_t from, std::uint32_t to) const {
    if (from >= block_of_.size() || to >= block_of_.size()) return false;
    const auto& b = blocks_[block_of_[from]];
    if (from != b.last()) return to == from + 1;  // interior: straight line only
    // ret (and friends): the graph claims nothing — any valid instruction
    // start is admissible, and the machine validates the address itself.
    if (b.unknown_successors) return true;
    // A non-terminator block tail can also step straight into the next
    // leader; that edge is recorded, so the generic scan below covers it.
    for (const auto& e : b.succs)
        if (blocks_[e.to].first == to) return true;
    return false;
}

std::vector<std::uint32_t> cfg::blocks_in_range(std::uint32_t first,
                                                std::uint32_t end) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t id = 0; id < blocks_.size(); ++id) {
        const auto& b = blocks_[id];
        if (b.first >= first && b.first + b.count <= end) out.push_back(id);
    }
    return out;
}

}  // namespace pssp::analysis
