// The metric registry's exactness and concurrency contract: relaxed
// atomics lose no increments, ids are stable per name, histograms keep
// exact count/sum, and the JSON export is deterministic.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "util/json.hpp"

namespace pssp {
namespace {

#if PSSP_OBS

TEST(obs_registry, registration_is_idempotent_per_name) {
    const auto a = obs::counter("test.registry.idem");
    const auto b = obs::counter("test.registry.idem");
    EXPECT_EQ(a, b);
    const auto c = obs::counter("test.registry.other");
    EXPECT_NE(a, c);
}

TEST(obs_registry, counts_exactly_under_8_threads) {
    obs::reset_all_for_test();
    const auto id = obs::counter("test.registry.hammer");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 100'000;
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([id] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i) obs::add(id, 1);
        });
    for (auto& t : pool) t.join();
    EXPECT_EQ(obs::value(id), kThreads * kAddsPerThread);
}

TEST(obs_registry, histogram_keeps_exact_count_and_sum_under_threads) {
    obs::reset_all_for_test();
    const auto id = obs::histogram("test.registry.hist");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kSamples = 10'000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([id] {
            for (std::uint64_t i = 0; i < kSamples; ++i) obs::observe(id, i);
        });
    for (auto& t : pool) t.join();
    for (const auto& m : obs::snapshot()) {
        if (m.name != "test.registry.hist") continue;
        EXPECT_EQ(m.type, obs::metric_type::histogram);
        EXPECT_EQ(m.count, kThreads * kSamples);
        EXPECT_EQ(m.sum, kThreads * (kSamples * (kSamples - 1) / 2));
        return;
    }
    FAIL() << "histogram missing from snapshot";
}

TEST(obs_registry, gauge_set_overwrites) {
    obs::reset_all_for_test();
    const auto id = obs::gauge("test.registry.gauge");
    obs::set(id, 41);
    obs::set(id, 7);
    EXPECT_EQ(obs::value(id), 7u);
}

TEST(obs_registry, metrics_json_parses_and_contains_metrics) {
    obs::reset_all_for_test();
    const auto id = obs::counter("test.registry.json");
    obs::add(id, 5);
    const auto hist = obs::histogram("test.registry.json_hist");
    obs::observe(hist, 16);
    obs::observe(hist, 4);
    const auto doc = util::parse_json(obs::metrics_json());
    EXPECT_EQ(doc.at("test.registry.json").as_u64(), 5u);
    const auto& h = doc.at("test.registry.json_hist");
    EXPECT_EQ(h.at("count").as_u64(), 2u);
    EXPECT_EQ(h.at("sum").as_u64(), 20u);
}

#else  // PSSP_OBS == 0

TEST(obs_registry, stubs_compile_and_return_zero) {
    const auto id = obs::counter("test.registry.stub");
    obs::add(id, 9);
    EXPECT_EQ(obs::value(id), 0u);
    EXPECT_TRUE(obs::snapshot().empty());
}

#endif

}  // namespace
}  // namespace pssp
