// Section VI-C compatibility experiments: binaries mixing P-SSP and SSP
// code in one control flow, across fork.
//
// Paper: "we compile SPEC ... with P-SSP while glibc is compiled with the
// default SSP option" and vice versa; "the benchmark programs behave
// normally ... No false positive occurs when the child process returns to
// the stack frames inherited from the parent process."
//
// Here the application (server + handler) and a "library" module are each
// compiled under one of {SSP, P-SSP} in all four combinations; the library
// function is called from the worker's handler, and the worker returns
// through master-created frames. Every combination must serve benign
// requests with zero false positives — because P-SSP never changes the TLS
// canary C that SSP frames check against.

#include "bench_util.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

// A library module: one protected helper with a buffer, called per request.
compiler::ir_module library_module() {
    compiler::ir_module mod;
    mod.name = "libhelper";
    auto& fn = mod.add_function("lib_transform");
    (void)compiler::add_local(fn, "scratch", 32, /*is_buffer=*/true);
    const int acc = compiler::add_local(fn, "acc");
    const int i = compiler::add_local(fn, "i");
    fn.body.push_back(compiler::assign_stmt{acc, compiler::const_ref{3}});
    compiler::loop_stmt work{i, 16, {}};
    work.body.push_back(compiler::compute_stmt{
        acc, compiler::local_ref{acc}, compiler::binop::mul, compiler::const_ref{65599}});
    fn.body.push_back(work);
    fn.body.push_back(compiler::return_stmt{compiler::local_ref{acc}});
    return mod;
}

// The app: the standard forking server whose handler also calls into the
// library module.
compiler::ir_module app_module() {
    auto mod = workload::make_server_module(workload::nginx_profile());
    for (auto& fn : mod.functions) {
        if (fn.name != "handle_request") continue;
        const int r = compiler::add_local(fn, "libr");
        // Insert the cross-module call before the final return.
        fn.body.insert(fn.body.end() - 1,
                       compiler::call_stmt{"lib_transform", {}, r});
    }
    return mod;
}

struct combo_result {
    int served = 0;
    int false_positives = 0;
    bool overflow_still_caught = false;
};

combo_result run_combo(scheme_kind app_kind, scheme_kind lib_kind) {
    const auto app = app_module();
    const auto lib = library_module();
    auto binary = compiler::build_mixed(
        {{&app, core::make_scheme(app_kind)}, {&lib, core::make_scheme(lib_kind)}});

    // Deployed runtime: the P-SSP preload when any component uses P-SSP
    // (it supersets SSP's TLS needs), stock SSP otherwise.
    const auto hook_kind =
        (app_kind == scheme_kind::p_ssp || lib_kind == scheme_kind::p_ssp)
            ? scheme_kind::p_ssp
            : scheme_kind::ssp;
    proc::fork_server server{binary, core::make_scheme(hook_kind), 77,
                             workload::server_config_for(workload::nginx_profile())};

    combo_result out;
    for (int i = 0; i < 25; ++i) {
        const auto r = server.serve("GET /mixed HTTP/1.1");
        ++out.served;
        if (r.outcome != proc::worker_outcome::ok) ++out.false_positives;
    }
    // And the protection must still work in the mixed build:
    const std::vector<std::uint8_t> smash(160, 'A');
    out.overflow_still_caught =
        server.serve(smash).outcome == proc::worker_outcome::crashed_canary;
    return out;
}

}  // namespace

int main() {
    bench::print_header("Compatibility matrix — mixed P-SSP / SSP binaries over fork",
                        "Section VI-C (compatibility & effectiveness)");

    util::text_table table{{"application", "library", "benign served",
                            "false positives", "overflow detected"}};
    for (const auto app : {scheme_kind::ssp, scheme_kind::p_ssp}) {
        for (const auto lib : {scheme_kind::ssp, scheme_kind::p_ssp}) {
            const auto r = run_combo(app, lib);
            table.add_row({core::to_string(app), core::to_string(lib),
                           std::to_string(r.served),
                           std::to_string(r.false_positives),
                           r.overflow_still_caught ? "yes" : "NO"});
        }
    }
    std::printf("%s\n", table.render("All four build combinations").c_str());
    std::printf("paper: zero false positives in both mixed directions — P-SSP is\n"
                "fully compatible with SSP because the TLS canary C never changes.\n");
    return 0;
}
