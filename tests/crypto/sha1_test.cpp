// SHA-1 known-answer tests (FIPS 180-1 examples) and streaming behavior.

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha1.hpp"
#include "util/bytes.hpp"

namespace pssp {
namespace {

using crypto::sha1;

std::string hex_of(std::span<const std::uint8_t> bytes) {
    std::string out;
    char buf[4];
    for (const auto b : bytes) {
        std::snprintf(buf, sizeof buf, "%02x", b);
        out += buf;
    }
    return out;
}

std::span<const std::uint8_t> bytes_of(const std::string& s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(sha1, empty_string) {
    EXPECT_EQ(hex_of(sha1::digest({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(sha1, abc) {
    EXPECT_EQ(hex_of(sha1::digest(bytes_of("abc"))),
              "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(sha1, fips_two_block_message) {
    EXPECT_EQ(hex_of(sha1::digest(bytes_of(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(sha1, million_a) {
    sha1 ctx;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) ctx.update(bytes_of(chunk));
    EXPECT_EQ(hex_of(ctx.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(sha1, streaming_equals_one_shot) {
    const std::string msg =
        "polymorphic canaries resist byte-by-byte guessing across forks";
    sha1 streaming;
    for (const char c : msg)
        streaming.update({reinterpret_cast<const std::uint8_t*>(&c), 1});
    EXPECT_EQ(hex_of(streaming.finish()), hex_of(sha1::digest(bytes_of(msg))));
}

TEST(sha1, reset_allows_reuse) {
    sha1 ctx;
    ctx.update(bytes_of("first"));
    (void)ctx.finish();
    ctx.reset();
    ctx.update(bytes_of("abc"));
    EXPECT_EQ(hex_of(ctx.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(sha1, digest64_is_prefix) {
    const auto full = sha1::digest(bytes_of("abc"));
    EXPECT_EQ(sha1::digest64(bytes_of("abc")),
              util::load_le64(std::span{full}.subspan(0, 8)));
}

// Boundary lengths around the 64-byte block and the 56-byte padding edge.
class sha1_padding_test : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(block_boundaries, sha1_padding_test,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 127, 128));

TEST_P(sha1_padding_test, incremental_matches_one_shot_at_boundary) {
    const std::string msg(GetParam(), 'x');
    sha1 ctx;
    const std::size_t half = msg.size() / 2;
    ctx.update(bytes_of(msg.substr(0, half)));
    ctx.update(bytes_of(msg.substr(half)));
    EXPECT_EQ(hex_of(ctx.finish()), hex_of(sha1::digest(bytes_of(msg))));
}

}  // namespace
}  // namespace pssp
