#include "dist/shard.hpp"

#include <stdexcept>

namespace pssp::dist {

std::vector<shard_plan> plan_shards(const campaign::campaign_spec& spec,
                                    std::uint32_t count) {
    if (count == 0)
        throw std::invalid_argument{"plan_shards: shard count must be >= 1"};
    std::vector<shard_plan> plans(count);
    for (std::uint32_t k = 0; k < count; ++k) {
        plans[k].shard_index = k;
        plans[k].shard_count = count;
    }
    for (const auto& block : campaign::blocks_for(spec))
        plans[block.index % count].blocks.push_back(block);
    return plans;
}

shard_plan plan_shard(const campaign::campaign_spec& spec,
                      std::uint32_t shard_index, std::uint32_t shard_count) {
    if (shard_count == 0)
        throw std::invalid_argument{"plan_shard: shard count must be >= 1"};
    if (shard_index >= shard_count)
        throw std::invalid_argument{"plan_shard: shard index out of range"};
    shard_plan plan;
    plan.shard_index = shard_index;
    plan.shard_count = shard_count;
    for (const auto& block : campaign::blocks_for(spec))
        if (block.index % shard_count == shard_index)
            plan.blocks.push_back(block);
    return plan;
}

}  // namespace pssp::dist
