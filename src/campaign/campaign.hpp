// Campaign types: the declarative spec a caller hands the engine and the
// reduced report it gets back.
//
// A campaign is a full cross product — scheme kinds x attack strategies x
// workload targets — with `trials_per_cell` independent Monte-Carlo trials
// per cell. Each trial boots a fresh fork server (new master, new TLS
// canary C) and runs one attack to completion, so the per-cell reduction
// measures the paper's statistical claims as *distributions*: detection
// probability with a Wilson interval, guesses-to-compromise, residual
// leak value. One-shot runs (bench/security_effectiveness.cpp) show a
// sample; a campaign shows the curve.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attack/strategy.hpp"
#include "core/scheme.hpp"
#include "util/stats.hpp"
#include "workload/victim.hpp"

namespace pssp::campaign {

struct campaign_spec {
    std::vector<core::scheme_kind> schemes;
    std::vector<attack::attack_kind> attacks;
    std::vector<workload::target_kind> targets;
    std::uint64_t trials_per_cell = 100;
    std::uint64_t master_seed = 2018;
    // Host worker threads. 0 = one per hardware thread. Never part of the
    // report: a campaign is bit-reproducible at any jobs level.
    unsigned jobs = 1;
    // Reuse booted masters across trials via each victim's master_pool
    // (snapshot-restore reboot) instead of constructing a fork server per
    // trial. Purely an execution-speed knob: pooled and fresh oracles are
    // byte-identical for equal seeds, so — like jobs — this is never part
    // of the report.
    bool reuse_masters = true;
    std::uint64_t query_budget = 4096;  // oracle queries per trial
    unsigned brute_unknown_bits = 12;   // entropy-reduction harness setting
    core::scheme_options scheme_options{};

    [[nodiscard]] std::uint64_t cell_count() const noexcept {
        return schemes.size() * attacks.size() * targets.size();
    }
    [[nodiscard]] std::uint64_t trial_count() const noexcept {
        return cell_count() * trials_per_cell;
    }
};

// The default acceptance matrix: {ssp, raf_ssp, p_ssp} x all attacks on the
// forking nginx analog.
[[nodiscard]] campaign_spec default_spec();

// One trial's reduced record (a flattened attack::attack_outcome).
struct trial_result {
    bool hijacked = false;
    bool detected = false;
    std::uint64_t oracle_queries = 0;
    std::uint64_t canary_detections = 0;
    std::uint64_t other_crashes = 0;
    unsigned leaked_bytes_valid = 0;
};

// Per-cell statistics over trials_per_cell trials.
struct cell_report {
    core::scheme_kind scheme{};
    attack::attack_kind attack{};
    workload::target_kind target{};
    std::uint64_t trials = 0;
    std::uint64_t hijacks = 0;
    std::uint64_t detections = 0;
    double hijack_rate = 0.0;
    double detection_rate = 0.0;
    util::interval detection_ci{};        // Wilson 95%
    util::interval hijack_ci{};           // Wilson 95%
    util::welford_accumulator queries;    // oracle queries, all trials
    util::welford_accumulator queries_to_compromise;  // hijacked trials only
    util::welford_accumulator leaked_bytes_valid;     // residual leak value
    std::uint64_t canary_detections = 0;  // __stack_chk_fail deaths, summed
    std::uint64_t other_crashes = 0;      // segv / cf / fuel deaths, summed
};

struct campaign_report {
    campaign_spec spec;
    std::vector<cell_report> cells;  // target-major, then scheme, then attack

    // Deterministic serialization: fixed key order, fixed float formatting,
    // no scheduling-dependent fields (spec.jobs is deliberately absent), so
    // byte-equality across --jobs levels is the reproducibility check.
    [[nodiscard]] std::string to_json() const;

    // Human-readable outcome matrix (text_table rendering).
    [[nodiscard]] std::string to_table() const;
};

// Reduces trial records (in trial-index order) into the per-cell reports.
// Exposed separately from the engine so tests can feed synthetic trials.
[[nodiscard]] cell_report reduce_cell(core::scheme_kind scheme,
                                      attack::attack_kind attack,
                                      workload::target_kind target,
                                      std::span<const trial_result> trials);

}  // namespace pssp::campaign
