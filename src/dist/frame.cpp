#include "dist/frame.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

#include "util/bytes.hpp"
#include "util/json.hpp"

namespace pssp::dist {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
    char b[4];
    b[0] = static_cast<char>(v & 0xff);
    b[1] = static_cast<char>((v >> 8) & 0xff);
    b[2] = static_cast<char>((v >> 16) & 0xff);
    b[3] = static_cast<char>((v >> 24) & 0xff);
    out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
    put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::uint64_t get_u64(const char* p) {
    return static_cast<std::uint64_t>(get_u32(p)) |
           static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

// The trailer hash covers the type byte and the payload, so a frame whose
// type was flipped in flight is just as detectable as a flipped payload.
std::uint64_t frame_hash(frame_type type, std::string_view payload) {
    char t = static_cast<char>(type);
    std::uint64_t h = util::fnv1a64(std::string_view{&t, 1});
    // Continue the FNV stream over the payload.
    for (const char c : payload) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

constexpr std::size_t header_bytes = 5;   // u32 length + u8 type
constexpr std::size_t trailer_bytes = 8;  // u64 hash

}  // namespace

const char* to_string(frame_type type) noexcept {
    switch (type) {
        case frame_type::hello: return "hello";
        case frame_type::welcome: return "welcome";
        case frame_type::lease: return "lease";
        case frame_type::result: return "result";
        case frame_type::heartbeat: return "heartbeat";
        case frame_type::shutdown: return "shutdown";
        case frame_type::error: return "error";
    }
    return "?";
}

std::string encode_frame(frame_type type, std::string_view payload) {
    if (payload.size() > max_frame_payload)
        throw std::runtime_error{
            "frame: refusing to encode a " + std::to_string(payload.size()) +
            "-byte payload (limit " + std::to_string(max_frame_payload) + ")"};
    std::string out;
    out.reserve(header_bytes + payload.size() + trailer_bytes);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    out.push_back(static_cast<char>(type));
    out.append(payload);
    put_u64(out, frame_hash(type, payload));
    return out;
}

std::optional<frame> frame_reader::next() {
    if (buf_.size() < header_bytes) return std::nullopt;
    const std::uint32_t len = get_u32(buf_.data());
    if (len > max_frame_payload)
        throw std::runtime_error{
            "frame: oversized length prefix (" + std::to_string(len) +
            " bytes > " + std::to_string(max_frame_payload) + ")"};
    const std::size_t total = header_bytes + len + trailer_bytes;
    if (buf_.size() < total) return std::nullopt;
    frame f;
    f.type = static_cast<frame_type>(
        static_cast<unsigned char>(buf_[header_bytes - 1]));
    f.payload.assign(buf_, header_bytes, len);
    const std::uint64_t want = get_u64(buf_.data() + header_bytes + len);
    if (frame_hash(f.type, f.payload) != want)
        throw std::runtime_error{
            "frame: integrity hash mismatch (garbled frame)"};
    buf_.erase(0, total);
    return f;
}

std::string closed_mid_frame_error(std::size_t pending_bytes) {
    return "frame: connection closed mid-frame (" +
           std::to_string(pending_bytes) + " byte(s) of an incomplete frame)";
}

// ---- Envelopes ----

std::string encode_lease(const lease_envelope& env, std::string_view job_json) {
    std::string out;
    out.reserve(20 + job_json.size());
    put_u32(out, env.shard);
    put_u32(out, env.shard_count);
    put_u32(out, env.attempt);
    put_u64(out, env.round);
    out.append(job_json);
    return out;
}

lease_envelope decode_lease(std::string_view payload,
                            std::string_view* job_json) {
    if (payload.size() < 20)
        throw std::runtime_error{"lease frame: payload shorter than its "
                                 "20-byte envelope"};
    lease_envelope env;
    env.shard = get_u32(payload.data());
    env.shard_count = get_u32(payload.data() + 4);
    env.attempt = get_u32(payload.data() + 8);
    env.round = get_u64(payload.data() + 12);
    if (job_json != nullptr) *job_json = payload.substr(20);
    return env;
}

std::string encode_result(const result_envelope& env, std::string_view output) {
    std::string out;
    out.reserve(16 + output.size());
    put_u32(out, env.shard);
    put_u32(out, env.shard_count);
    put_u32(out, env.attempt);
    put_u32(out, static_cast<std::uint32_t>(env.wait_status));
    out.append(output);
    return out;
}

result_envelope decode_result(std::string_view payload,
                              std::string_view* output) {
    if (payload.size() < 16)
        throw std::runtime_error{"result frame: payload shorter than its "
                                 "16-byte envelope"};
    result_envelope env;
    env.shard = get_u32(payload.data());
    env.shard_count = get_u32(payload.data() + 4);
    env.attempt = get_u32(payload.data() + 8);
    env.wait_status = static_cast<std::int32_t>(get_u32(payload.data() + 12));
    if (output != nullptr) *output = payload.substr(16);
    return env;
}

// ---- frame_conn ----

frame_conn::frame_conn(frame_conn&& other) noexcept
    : fd_{other.fd_},
      reader_{std::move(other.reader_)},
      wbuf_{std::move(other.wbuf_)},
      woff_{other.woff_},
      error_{std::move(other.error_)} {
    other.fd_ = -1;
}

frame_conn& frame_conn::operator=(frame_conn&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        reader_ = std::move(other.reader_);
        wbuf_ = std::move(other.wbuf_);
        woff_ = other.woff_;
        error_ = std::move(other.error_);
        other.fd_ = -1;
    }
    return *this;
}

void frame_conn::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

frame_conn::io_status frame_conn::read_frames(std::vector<frame>& out) {
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd_, buf, sizeof buf);
        if (n > 0) {
            reader_.feed(buf, static_cast<std::size_t>(n));
            try {
                while (auto f = reader_.next()) out.push_back(std::move(*f));
            } catch (const std::exception& e) {
                error_ = e.what();
                return io_status::failed;
            }
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return io_status::ok;
        if (n < 0) {
            error_ = std::string{"read failed: "} + std::strerror(errno);
            return io_status::failed;
        }
        // EOF. A partial frame left in the buffer means the peer died (or
        // was cut) mid-transfer — report it as such, not as a clean close.
        if (reader_.pending_bytes() != 0) {
            error_ = closed_mid_frame_error(reader_.pending_bytes());
            return io_status::failed;
        }
        return io_status::closed;
    }
}

void frame_conn::queue(frame_type type, std::string_view payload) {
    wbuf_.append(encode_frame(type, payload));
}

bool frame_conn::pump_writes() {
    while (woff_ < wbuf_.size()) {
        const ssize_t n =
            ::write(fd_, wbuf_.data() + woff_, wbuf_.size() - woff_);
        if (n > 0) {
            woff_ += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        error_ = std::string{"write failed: "} + std::strerror(errno);
        return false;
    }
    if (woff_ == wbuf_.size()) {
        wbuf_.clear();
        woff_ = 0;
    } else if (woff_ > (1u << 20)) {
        // Keep the buffer from growing a long dead prefix.
        wbuf_.erase(0, woff_);
        woff_ = 0;
    }
    return true;
}

// ---- Handshake payloads ----

std::string hello_to_json(const hello_msg& msg) {
    return "{\"hello\": {\"version\": " + std::to_string(msg.version) +
           ", \"name\": \"" + util::json_escape(msg.name) +
           "\", \"reconnects\": " + std::to_string(msg.reconnects) + "}}";
}

hello_msg hello_from_json(std::string_view text) {
    const auto doc = util::parse_json(text);
    const auto& h = doc.at("hello");
    hello_msg msg;
    msg.version = static_cast<std::uint32_t>(h.at("version").as_u64());
    msg.name = h.at("name").as_string();
    msg.reconnects = h.at("reconnects").as_u64();
    return msg;
}

std::string welcome_to_json(const welcome_msg& msg) {
    return "{\"welcome\": {\"version\": " + std::to_string(msg.version) +
           ", \"heartbeat_ms\": " + std::to_string(msg.heartbeat_ms) +
           ", \"spec_digest\": " + std::to_string(msg.spec_digest) + "}}";
}

welcome_msg welcome_from_json(std::string_view text) {
    const auto doc = util::parse_json(text);
    const auto& w = doc.at("welcome");
    welcome_msg msg;
    msg.version = static_cast<std::uint32_t>(w.at("version").as_u64());
    msg.heartbeat_ms = w.at("heartbeat_ms").as_u64();
    msg.spec_digest = w.at("spec_digest").as_u64();
    return msg;
}

}  // namespace pssp::dist
