#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/tls_layout.hpp"
#include "crypto/prng.hpp"

namespace pssp::campaign {

trial_seeds seeds_for_trial(std::uint64_t master_seed, std::uint64_t trial_index) {
    // splitmix64 over a per-trial state: the golden-ratio stride keeps
    // neighboring trials' states far apart, and splitmix's full-avalanche
    // output decorrelates the two streams from each other and from the raw
    // master seed. Purely a function of (master_seed, trial_index) — never
    // of which worker thread picked the trial up.
    std::uint64_t state = master_seed + 0x9e3779b97f4a7c15ull * (trial_index + 1);
    trial_seeds s;
    s.server = crypto::splitmix64_next(state);
    s.attacker = crypto::splitmix64_next(state);
    return s;
}

namespace {

struct cell_key {
    workload::target_kind target;
    core::scheme_kind scheme;
    attack::attack_kind attack;
    const workload::victim* victim = nullptr;
};

trial_result run_trial(const cell_key& cell, const campaign_spec& spec,
                       const trial_seeds& seeds) {
    // Pooled and fresh oracles are byte-identical for a given seed (the
    // master_pool contract), so this branch affects wall-clock only.
    std::optional<proc::master_pool::lease> lease;
    std::optional<proc::fork_server> fresh;
    if (spec.reuse_masters)
        lease.emplace(cell.victim->lease_server(seeds.server));
    else
        fresh.emplace(cell.victim->make_server(seeds.server));
    proc::fork_server& oracle = lease.has_value() ? lease->server() : *fresh;

    attack::attack_context ctx{
        .oracle = oracle,
        .scheme = cell.scheme,
        .prefix_bytes = cell.victim->prefix_bytes,
        .canary_bytes = cell.victim->canary_bytes,
        .ret_target = cell.victim->ret_target,
        .saved_rbp = cell.victim->saved_rbp,
        .seed = seeds.attacker,
        .query_budget = spec.query_budget,
        .true_canary_hint = 0,
        .unknown_bits = spec.brute_unknown_bits,
        .dcr_offset = 0,
    };
    if (cell.attack == attack::attack_kind::brute_force) {
        // The entropy-reduction harness (Section III-C-1): leak the top
        // bits of the booted master's true canary so the residual search
        // space is 2^unknown_bits and trials finish inside the budget.
        ctx.true_canary_hint = core::tls_load(oracle.master(), core::tls_canary);
    }

    const auto strategy = attack::make_strategy(cell.attack);
    const auto outcome = strategy->execute(ctx);

    return trial_result{
        .hijacked = outcome.hijacked,
        .detected = outcome.detected,
        .oracle_queries = outcome.oracle_queries,
        .canary_detections = outcome.canary_detections,
        .other_crashes = outcome.other_crashes,
        .leaked_bytes_valid = outcome.leaked_bytes_valid,
    };
}

}  // namespace

engine::engine(campaign_spec spec) : spec_{std::move(spec)} {
    if (spec_.schemes.empty() || spec_.attacks.empty() || spec_.targets.empty())
        throw std::invalid_argument{
            "campaign::engine: spec needs >= 1 scheme, attack and target"};
    if (spec_.trials_per_cell == 0)
        throw std::invalid_argument{"campaign::engine: trials_per_cell == 0"};
    // DCR's brute-force model needs the victim's true link offset in the
    // low canary half; no static victim property supplies it, and running
    // with a wrong offset reports a hijack rate of 0 that is
    // indistinguishable from genuine prevention. Refuse to measure garbage.
    const bool has_brute =
        std::find(spec_.attacks.begin(), spec_.attacks.end(),
                  attack::attack_kind::brute_force) != spec_.attacks.end();
    const bool has_dcr = std::find(spec_.schemes.begin(), spec_.schemes.end(),
                                   core::scheme_kind::dcr) != spec_.schemes.end();
    if (has_brute && has_dcr)
        throw std::invalid_argument{
            "campaign::engine: brute_force x dcr needs the per-victim link "
            "offset, which campaigns do not model yet"};
}

campaign_report engine::run() {
    // One victim build per (target, scheme); attacks within a cell share it.
    std::vector<workload::victim> victims;
    victims.reserve(spec_.targets.size() * spec_.schemes.size());
    for (const auto target : spec_.targets)
        for (const auto scheme : spec_.schemes)
            victims.push_back(
                workload::make_victim(target, scheme, spec_.scheme_options));

    // Cell-major trial index space, target-major cell order (the report's
    // documented ordering).
    std::vector<cell_key> cells;
    cells.reserve(spec_.cell_count());
    for (std::size_t ti = 0; ti < spec_.targets.size(); ++ti)
        for (std::size_t si = 0; si < spec_.schemes.size(); ++si)
            for (const auto atk : spec_.attacks)
                cells.push_back(cell_key{spec_.targets[ti], spec_.schemes[si], atk,
                                         &victims[ti * spec_.schemes.size() + si]});

    const std::uint64_t total = cells.size() * spec_.trials_per_cell;
    std::vector<trial_result> results(total);

    unsigned jobs = spec_.jobs != 0 ? spec_.jobs : std::thread::hardware_concurrency();
    if (jobs == 0) jobs = 1;
    jobs = static_cast<unsigned>(
        std::min<std::uint64_t>(jobs, total));

    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> done{0};
    std::mutex error_mutex;
    std::string first_error;
    std::atomic<bool> failed{false};

    auto worker = [&] {
        for (;;) {
            const std::uint64_t g = next.fetch_add(1, std::memory_order_relaxed);
            if (g >= total || failed.load(std::memory_order_relaxed)) return;
            const auto& cell = cells[g / spec_.trials_per_cell];
            try {
                results[g] = run_trial(cell, spec_,
                                       seeds_for_trial(spec_.master_seed, g));
            } catch (const std::exception& e) {
                std::lock_guard lock{error_mutex};
                if (first_error.empty())
                    first_error = std::string{"trial "} + std::to_string(g) + ": " +
                                  e.what();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
            const std::uint64_t completed =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (progress_) {
                std::lock_guard lock{error_mutex};
                progress_(completed, total);
            }
        }
    };

    if (jobs == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
        for (auto& t : pool) t.join();
    }
    if (failed.load())
        throw std::runtime_error{"campaign::engine: " + first_error};

    // Sequential reduction in trial-index order: identical inputs in an
    // identical order, whatever jobs was.
    campaign_report report;
    report.spec = spec_;
    report.cells.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const std::span<const trial_result> cell_trials{
            results.data() + c * spec_.trials_per_cell, spec_.trials_per_cell};
        report.cells.push_back(reduce_cell(cells[c].scheme, cells[c].attack,
                                           cells[c].target, cell_trials));
    }
    return report;
}

}  // namespace pssp::campaign
