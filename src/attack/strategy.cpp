#include "attack/strategy.hpp"

#include <stdexcept>

#include "attack/brute_force.hpp"
#include "attack/byte_by_byte.hpp"
#include "attack/leak_replay.hpp"

namespace pssp::attack {

std::string to_string(attack_kind kind) {
    switch (kind) {
        case attack_kind::brute_force: return "brute_force";
        case attack_kind::byte_by_byte: return "byte_by_byte";
        case attack_kind::leak_replay: return "leak_replay";
    }
    throw std::invalid_argument{"to_string: unknown attack_kind"};
}

attack_kind attack_kind_from_string(const std::string& name) {
    for (const auto kind : all_attack_kinds())
        if (to_string(kind) == name) return kind;
    throw std::invalid_argument{"attack_kind_from_string: unknown attack \"" +
                                name + "\""};
}

const std::vector<attack_kind>& all_attack_kinds() {
    static const std::vector<attack_kind> kinds{
        attack_kind::brute_force,
        attack_kind::byte_by_byte,
        attack_kind::leak_replay,
    };
    return kinds;
}

namespace {

class brute_force_strategy final : public attack_strategy {
  public:
    [[nodiscard]] attack_kind kind() const noexcept override {
        return attack_kind::brute_force;
    }
    [[nodiscard]] std::string name() const override { return "brute_force"; }

    [[nodiscard]] attack_outcome execute(const attack_context& ctx) const override {
        brute_force_config cfg;
        cfg.prefix_bytes = ctx.prefix_bytes;
        cfg.unknown_bits = ctx.unknown_bits;
        cfg.true_canary_hint = ctx.true_canary_hint;
        cfg.max_trials = ctx.query_budget;
        cfg.rng_seed = ctx.seed;
        cfg.dcr_offset = ctx.dcr_offset;
        brute_force atk{ctx.oracle, ctx.scheme, cfg};
        const auto r = atk.run(ctx.ret_target, ctx.saved_rbp);

        attack_outcome out;
        out.hijacked = r.hijacked;
        out.oracle_queries = r.trials;
        out.canary_detections = r.canary_crashes;
        out.other_crashes =
            r.trials - r.canary_crashes - (r.hijacked ? 1 : 0);
        out.detected = !out.hijacked && out.canary_detections > 0;
        return out;
    }
};

class byte_by_byte_strategy final : public attack_strategy {
  public:
    [[nodiscard]] attack_kind kind() const noexcept override {
        return attack_kind::byte_by_byte;
    }
    [[nodiscard]] std::string name() const override { return "byte_by_byte"; }

    [[nodiscard]] attack_outcome execute(const attack_context& ctx) const override {
        byte_by_byte_config cfg;
        cfg.prefix_bytes = ctx.prefix_bytes;
        cfg.canary_bytes = ctx.canary_bytes;
        cfg.max_trials = ctx.query_budget;
        byte_by_byte atk{ctx.oracle, cfg};
        const auto campaign = atk.run_campaign(ctx.ret_target, ctx.saved_rbp);

        attack_outcome out;
        out.hijacked = campaign.hijacked;
        out.oracle_queries = campaign.total_trials;
        out.canary_detections = campaign.recovery.canary_crashes;
        out.other_crashes =
            campaign.recovery.worker_crashes - campaign.recovery.canary_crashes;
        out.detected = !out.hijacked && out.canary_detections > 0;
        return out;
    }
};

class leak_replay_strategy final : public attack_strategy {
  public:
    [[nodiscard]] attack_kind kind() const noexcept override {
        return attack_kind::leak_replay;
    }
    [[nodiscard]] std::string name() const override { return "leak_replay"; }

    [[nodiscard]] attack_outcome execute(const attack_context& ctx) const override {
        leak_replay_config cfg;
        cfg.prefix_bytes = ctx.prefix_bytes;
        cfg.canary_bytes = ctx.canary_bytes;
        cfg.leak_offset = ctx.prefix_bytes;
        leak_replay atk{ctx.oracle, cfg};
        const auto r = atk.run(ctx.ret_target, ctx.saved_rbp);

        attack_outcome out;
        out.hijacked = r.hijacked;
        out.oracle_queries = r.trials;
        out.canary_detections = r.canary_crashes;
        out.other_crashes = r.other_crashes;
        out.leaked_bytes_valid = r.bytes_valid;
        out.detected = !out.hijacked && out.canary_detections > 0;
        return out;
    }
};

}  // namespace

std::unique_ptr<attack_strategy> make_strategy(attack_kind kind) {
    switch (kind) {
        case attack_kind::brute_force:
            return std::make_unique<brute_force_strategy>();
        case attack_kind::byte_by_byte:
            return std::make_unique<byte_by_byte_strategy>();
        case attack_kind::leak_replay:
            return std::make_unique<leak_replay_strategy>();
    }
    throw std::invalid_argument{"make_strategy: unknown attack_kind"};
}

}  // namespace pssp::attack
