// The store's write path: a strict side channel on the orchestrator's
// accepted-round path.
//
// store_writer receives exactly what the checkpoint log receives — block
// partials the merge already validated — plus the obs round summaries and
// a final registry snapshot, and lands them durably (complete hashed
// line + fsync per ingest) in <dir>/ingest.log, compacting to column
// segments every few rounds and at finalize. Nothing here is read back
// into a trial, a merge, or a report: with the store on or off, at any
// --jobs or shard count, the campaign report bytes are pinned identical
// (tests/store/store_test.cpp, CI store-identity job).
//
// Ingest is idempotent by construction: a block index already present is
// skipped, which is what makes checkpoint-resume replays, fixed-run
// restored blocks, and at-least-once retry patterns safe to feed straight
// through — block partials are pure functions of (master_seed, block), so
// the first ingested copy of a block is the only possible value.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "store/format.hpp"

namespace pssp::store {

struct writer_options {
    // Compact pending rows into a column segment every N ingested round
    // summaries (0 = only at finalize). Fixed runs emit one summary, so
    // their compaction happens at finalize either way.
    std::uint64_t compact_every_rounds = 4;
};

class store_writer {
  public:
    // Opens a store directory for a campaign. Fresh directory: writes the
    // manifest (canonicalized spec + digest) and starts an empty log.
    // Existing store: requires `resume`, a matching spec digest, and an
    // incomplete store — torn segments are repaired on the way in, and
    // already-ingested blocks/rounds are remembered so replays dedup.
    // A fresh run refusing an existing store mirrors checkpoint_log.
    [[nodiscard]] static store_writer open(const std::string& dir,
                                           const campaign::campaign_spec& spec,
                                           bool resume,
                                           const writer_options& options = {});

    store_writer(store_writer&& other) noexcept;
    store_writer& operator=(store_writer&&) = delete;
    store_writer(const store_writer&) = delete;
    ~store_writer();

    // Appends the round's accepted block partials (those not already
    // present), one durable hashed line. No-op if every block is a dup.
    void ingest_blocks(std::uint64_t round,
                       std::span<const dist::partial_block> blocks);

    // Appends one round summary; dedups by round number (a resume replay
    // re-announces rounds the store may already hold). Drives the
    // periodic compaction cadence.
    void ingest_round(const obs::round_summary& summary);

    // Final compaction, then the registry snapshot entry, then the
    // terminal completion entry carrying FNV-1a(report JSON) — the
    // self-check queries verify reconstruction against — then the
    // manifest flips to complete.
    void finalize(const campaign::campaign_report& report,
                  const std::string& metrics_json);

    [[nodiscard]] const std::string& directory() const noexcept { return dir_; }
    [[nodiscard]] std::uint64_t ingested_blocks() const noexcept {
        return ingested_blocks_;
    }
    [[nodiscard]] std::uint64_t skipped_blocks() const noexcept {
        return skipped_blocks_;
    }
    [[nodiscard]] std::uint64_t segments_written() const noexcept {
        return segments_written_;
    }

  private:
    store_writer() = default;

    void append_entry(const log_entry& entry);
    void compact();
    void write_manifest() const;

    std::string dir_;
    manifest manifest_;
    int log_fd_ = -1;
    std::uint64_t next_seq_ = 1;
    writer_options options_;
    std::unordered_set<std::uint64_t> seen_blocks_;  // canonical block index
    std::unordered_set<std::uint64_t> seen_rounds_;
    std::vector<block_row> pending_blocks_;  // rows past compacted_seq
    std::vector<round_row> pending_rounds_;
    std::uint64_t rounds_since_compact_ = 0;
    std::uint64_t round_entries_ = 0;
    std::uint64_t ingested_blocks_ = 0;
    std::uint64_t skipped_blocks_ = 0;
    std::uint64_t segments_written_ = 0;
};

}  // namespace pssp::store
