#include "proc/process.hpp"

#include <stdexcept>

namespace pssp::proc {

process_manager::process_manager(std::shared_ptr<const core::scheme> sch,
                                 std::uint64_t seed)
    : runtime_{std::move(sch), seed}, entropy_seq_{seed ^ 0xabcdef0123456789ull} {}

vm::machine process_manager::create_process(const binfmt::linked_binary& binary,
                                            const vm::memory::layout& layout) {
    vm::machine m = make_image(binary.make_program(), binary.data_init,
                               binary.data_base, layout);
    boot_image(m);
    return m;
}

vm::machine process_manager::make_image(std::shared_ptr<const vm::program> prog,
                                        std::span<const std::uint8_t> data_init,
                                        std::uint64_t data_base,
                                        const vm::memory::layout& layout) {
    vm::machine m{std::move(prog), layout, /*entropy_seed=*/0};
    if (!data_init.empty()) m.mem().write_bytes(data_base, data_init);
    return m;
}

void process_manager::boot_image(vm::machine& m) {
    m.reseed_entropy(++entropy_seq_);
    m.set_pid(next_pid_++);
    runtime_.setup_process(m);
}

vm::machine process_manager::fork_child(const vm::machine& parent) {
    vm::machine child = parent;  // full clone: memory, registers, TLS, rip
    fork_child_finish(child);
    return child;
}

void process_manager::fork_child_finish(vm::machine& child) {
    child.set_pid(next_pid_++);
    child.clear_output();
    // Independent entropy stream: two processes never share an rdrand
    // sequence, otherwise a child's "fresh" canary would be predictable
    // from the parent's.
    child.reseed_entropy(++entropy_seq_);
    runtime_.on_fork_child(child);
}

void process_manager::reset(std::uint64_t seed) noexcept {
    runtime_.reseed(seed);
    next_pid_ = 1;
    entropy_seq_ = seed ^ 0xabcdef0123456789ull;
}

vm::machine process_manager::spawn_thread(const vm::machine& parent) {
    vm::machine thread = parent;
    thread.set_pid(next_pid_++);
    thread.clear_output();
    thread.reseed_entropy(++entropy_seq_);
    runtime_.on_thread_create(thread);
    return thread;
}

exec_outcome executor::run(vm::machine& m, int depth) {
    if (depth > max_fork_depth)
        throw std::runtime_error{"executor: fork depth limit exceeded (fork bomb?)"};

    exec_outcome out;
    m.set_fuel(fuel_ == 0 ? 0 : m.steps() + fuel_);
    for (;;) {
        const vm::run_result r = m.run();
        if (r.status == vm::exec_status::syscalled &&
            r.syscall_number == static_cast<std::uint32_t>(vm::syscall_no::sys_fork)) {
            vm::machine child = manager_.fork_child(m);
            child.complete_syscall(0);
            const exec_outcome child_out = run(child, depth + 1);
            out.output += child_out.output;
            out.processes += child_out.processes;
            m.complete_syscall(child.pid());
            continue;
        }
        out.result = r;
        break;
    }
    out.output = m.output() + out.output;
    return out;
}

}  // namespace pssp::proc
