// Binary image & linker: symbol resolution, label binding, layout, PLT
// native slots, data objects, and the editing API the rewriter depends on.

#include <gtest/gtest.h>

#include "binfmt/image.hpp"
#include "binfmt/stdlib.hpp"
#include "vm/machine.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::reg;

TEST(image, functions_get_sequential_addresses) {
    binfmt::image img;
    auto& a = img.add_function("a");
    a.emit({nop(), nop(), ret()});  // 3 bytes
    auto& b = img.add_function("b");
    b.emit(ret());
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    EXPECT_EQ(binary.symbols.at("a"), binfmt::default_text_base);
    EXPECT_EQ(binary.symbols.at("b"), binfmt::default_text_base + 3);
    EXPECT_EQ(binary.text_bytes(), 4u);
}

TEST(image, libc_functions_are_placed_after_app_code) {
    binfmt::image img;
    auto& lib = img.add_function("libfn", /*from_libc=*/true);
    lib.emit(ret());
    auto& app = img.add_function("appfn");
    app.emit(ret());
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    EXPECT_LT(binary.symbols.at("appfn"), binary.symbols.at("libfn"));
}

TEST(image, duplicate_function_is_rejected) {
    binfmt::image img;
    img.add_function("twice");
    EXPECT_THROW(img.add_function("twice"), std::invalid_argument);
}

TEST(image, unresolved_symbol_fails_link) {
    binfmt::image img;
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym("missing")), ret()});
    EXPECT_THROW((void)img.link(binfmt::link_mode::dynamic_glibc),
                 std::runtime_error);
}

TEST(image, labels_resolve_to_addresses) {
    binfmt::image img;
    auto& f = img.add_function("f");
    const auto target = f.new_label();
    f.emit(jmp(target));  // 5 bytes
    f.emit(nop());        // 1 byte — skipped
    f.place(target);
    f.emit(ret());
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto& lf = *binary.find("f");
    EXPECT_EQ(lf.insns[0].imm, binfmt::default_text_base + 6);
}

TEST(image, unbound_label_fails_link) {
    binfmt::image img;
    auto& f = img.add_function("f");
    f.emit({jmp(f.new_label()), ret()});
    EXPECT_THROW((void)img.link(binfmt::link_mode::dynamic_glibc),
                 std::runtime_error);
}

TEST(image, native_imports_get_plt_slots) {
    binfmt::image img;
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym("helper")), ret()});
    bool called = false;
    img.add_native_import("helper", [&called](vm::machine& m) {
        called = true;
        m.set(reg::rax, 7);
    });
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    EXPECT_EQ(binary.plt_bytes, binfmt::plt_entry_bytes);
    EXPECT_TRUE(binary.natives.contains(binary.symbols.at("helper")));

    vm::machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.call_function(binary.symbols.at("f"));
    EXPECT_EQ(m.run().exit_code, 7);
    EXPECT_TRUE(called);
}

TEST(image, image_function_overrides_native_import) {
    binfmt::image img;
    auto& strong = img.add_function("helper");
    strong.emit({mov_ri(reg::rax, 1), ret()});
    img.add_native_import("helper", [](vm::machine& m) { m.set(reg::rax, 2); });
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    EXPECT_EQ(binary.symbols.at("helper"), binfmt::default_text_base);
    EXPECT_EQ(binary.plt_bytes, 0u);
}

TEST(image, data_objects_are_laid_out_and_initialized) {
    binfmt::image img;
    img.add_function("f").emit(ret());
    img.add_data({"first", 24, {1, 2, 3}});
    img.add_data({"second", 8, {9}});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto first = binary.data_symbols.at("first");
    const auto second = binary.data_symbols.at("second");
    EXPECT_EQ(first, vm::default_globals_base);
    EXPECT_EQ(second % 16, 0u);  // 16-byte alignment
    EXPECT_GT(second, first);
    EXPECT_EQ(binary.data_init[0], 1);
    EXPECT_EQ(binary.data_init[second - binary.data_base], 9);
}

TEST(image, oversized_data_init_is_rejected) {
    binfmt::image img;
    EXPECT_THROW(img.add_data({"x", 2, {1, 2, 3}}), std::invalid_argument);
}

TEST(image, mov_ri_relocates_data_symbols) {
    binfmt::image img;
    img.add_data({"blob", 8, {0x2a}});
    auto& f = img.add_function("f");
    auto load_addr = mov_ri(reg::rcx, 0);
    load_addr.sym = img.sym("blob");
    f.emit({load_addr, movzx8_rm(reg::rax, mem(reg::rcx, 0)), ret()});
    const auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    vm::machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.mem().write_bytes(binary.data_symbols.at("blob"),
                        std::vector<std::uint8_t>{0x2a});
    m.call_function(binary.symbols.at("f"));
    EXPECT_EQ(m.run().exit_code, 0x2a);
}

// ---- linked_binary editing (the rewriter's substrate) ----

TEST(linked_binary, replace_range_enforces_equal_length) {
    binfmt::image img;
    auto& f = img.add_function("f");
    f.emit({nop(), nop(), ret()});
    auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    auto& lf = *binary.find("f");
    // nop (1 byte) -> jmp (5 bytes) must throw.
    EXPECT_THROW(binary.replace_range(lf, 0, 1, {jmp(0)}), std::runtime_error);
    // nop+nop (2 bytes) -> trap_abort (2 bytes) is fine.
    binary.replace_range(lf, 0, 2, {trap_abort()});
    EXPECT_EQ(lf.insns.size(), 2u);
    EXPECT_EQ(lf.addrs[1], binfmt::default_text_base + 2);
}

TEST(linked_binary, replace_range_rejects_out_of_bounds) {
    binfmt::image img;
    img.add_function("f").emit(ret());
    auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    EXPECT_THROW(binary.replace_range(*binary.find("f"), 0, 5, {}),
                 std::out_of_range);
}

TEST(linked_binary, append_function_lands_in_fresh_section) {
    binfmt::image img;
    img.add_function("f").emit(ret());
    auto binary = img.link(binfmt::link_mode::dynamic_glibc);
    const auto old_end = binary.text_end;

    binfmt::bin_function extra{"extra", true};
    extra.emit({mov_ri(reg::rax, 5), ret()});
    const auto entry = binary.append_function("extra", std::move(extra));
    EXPECT_EQ(entry % 0x1000, 0u);  // page-aligned section start
    EXPECT_GE(entry, old_end);
    EXPECT_EQ(binary.symbols.at("extra"), entry);

    vm::machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.call_function(entry);
    EXPECT_EQ(m.run().exit_code, 5);
}

TEST(linked_binary, bind_native_interposes_on_existing_symbol) {
    binfmt::image img;
    auto& helper = img.add_function("helper");
    helper.emit({mov_ri(reg::rax, 1), ret()});
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym("helper")), ret()});
    auto binary = img.link(binfmt::link_mode::dynamic_glibc);

    // LD_PRELOAD analog: the native now shadows the VM implementation.
    binary.bind_native("helper", [](vm::machine& m) { m.set(reg::rax, 99); });
    vm::machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.call_function(binary.symbols.at("f"));
    EXPECT_EQ(m.run().exit_code, 99);
}

// ---- the libc analog itself ----

class stdlib_test : public ::testing::TestWithParam<binfmt::link_mode> {};

INSTANTIATE_TEST_SUITE_P(both_modes, stdlib_test,
                         ::testing::Values(binfmt::link_mode::dynamic_glibc,
                                           binfmt::link_mode::static_glibc),
                         [](const auto& info) { return to_string(info.param); });

TEST_P(stdlib_test, strcpy_strlen_memcpy_memset_work) {
    binfmt::image img;
    img.add_data({"src", 32, {'c', 'a', 'n', 'a', 'r', 'y', 0}});
    img.add_data({"dst", 32, {}});
    auto& f = img.add_function("f");
    auto src = mov_ri(reg::rsi, 0);
    src.sym = img.sym("src");
    auto dst = mov_ri(reg::rdi, 0);
    dst.sym = img.sym("dst");
    auto dst2 = dst;
    // strcpy(dst, src); return strlen(dst);
    f.emit({dst, src, call_sym(img.sym(binfmt::sym_strcpy)), dst2,
            call_sym(img.sym(binfmt::sym_strlen)), ret()});
    binfmt::add_standard_library(img, GetParam());
    const auto binary = img.link(GetParam());

    vm::machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.mem().write_bytes(binary.data_symbols.at("src"),
                        std::vector<std::uint8_t>{'c', 'a', 'n', 'a', 'r', 'y', 0});
    m.call_function(binary.symbols.at("f"));
    m.set_fuel(100'000);
    EXPECT_EQ(m.run().exit_code, 6);  // strlen("canary")
    std::array<std::uint8_t, 7> copied{};
    m.mem().read_bytes(binary.data_symbols.at("dst"), copied);
    EXPECT_EQ(copied[0], 'c');
    EXPECT_EQ(copied[5], 'y');
    EXPECT_EQ(copied[6], 0);
}

TEST_P(stdlib_test, stack_chk_fail_aborts) {
    binfmt::image img;
    auto& f = img.add_function("f");
    f.emit({call_sym(img.sym(binfmt::sym_stack_chk_fail)), ret()});
    binfmt::add_standard_library(img, GetParam());
    const auto binary = img.link(GetParam());
    vm::machine m{binary.make_program(), vm::memory::layout{}, 1};
    m.call_function(binary.symbols.at("f"));
    m.set_fuel(1000);
    const auto r = m.run();
    EXPECT_EQ(r.status, vm::exec_status::trapped);
    EXPECT_EQ(r.trap, vm::trap_kind::stack_smash);
}

TEST(stdlib, static_mode_embeds_more_text_than_dynamic) {
    auto build = [](binfmt::link_mode mode) {
        binfmt::image img;
        img.add_function("f").emit(ret());
        binfmt::add_standard_library(img, mode);
        return img.link(mode).text_bytes();
    };
    EXPECT_GT(build(binfmt::link_mode::static_glibc),
              build(binfmt::link_mode::dynamic_glibc));
}

}  // namespace
}  // namespace pssp
