// Process-wide metric registry: named counters, gauges and histograms.
//
// Telemetry is strictly a side channel of the campaign platform — nothing
// read from or written to this registry may influence a trial outcome or a
// report byte (tests/campaign/telemetry_identity_test.cpp pins that). The
// design goal is therefore pure hot-path cheapness:
//
//   * Registration (obs::counter("campaign.trials")) resolves a name to a
//     flat slot index once, under a mutex, and is idempotent — the same
//     name always yields the same id, so call sites keep the id in a
//     function-local static and pay the lookup exactly once per process.
//   * The hot path (obs::add / obs::set / obs::observe) is one indexed
//     relaxed-atomic add into a preallocated slot array: no hashing, no
//     locking, no allocation — safe and exact under any thread count
//     (tests/obs/registry_test.cpp hammers it from 8 threads).
//   * Histograms are 64 log2 buckets plus exact count/sum, so value
//     distributions (dirty pages per reboot, steps per worker) cost the
//     same one-add as a counter.
//
// Compile-time kill switch: building with -DPSSP_OBS=0 (CMake option
// PSSP_OBS=OFF) replaces the entire API with inline no-op stubs — call
// sites compile unchanged and the telemetry layer vanishes from the
// binary. The release bench gate (bench_vm_throughput --max-obs-overhead)
// pins the compiled-in-but-idle cost of the default build.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef PSSP_OBS
#define PSSP_OBS 1
#endif

namespace pssp::obs {

enum class metric_type : std::uint8_t { counter, gauge, histogram };

// Flat slot index returned by registration; valid for the process
// lifetime. 0 is a legal id (the first registered metric).
using metric_id = std::uint32_t;

// Snapshot of one metric for export. Counters/gauges use `value`;
// histograms use count/sum plus the log2 bucket array (bucket b holds
// samples in [2^(b-1), 2^b), bucket 0 holds zero and one).
struct metric_snapshot {
    std::string name;
    metric_type type = metric_type::counter;
    std::uint64_t value = 0;
    std::uint64_t count = 0;  // histogram: samples observed
    std::uint64_t sum = 0;    // histogram: sum of samples
    std::vector<std::uint64_t> buckets;  // histogram: 64 log2 buckets
};

#if PSSP_OBS

// ---- Registration (cold; mutex-guarded; idempotent per name) ----
[[nodiscard]] metric_id counter(std::string_view name);
[[nodiscard]] metric_id gauge(std::string_view name);
[[nodiscard]] metric_id histogram(std::string_view name);

// ---- Hot path (one indexed relaxed-atomic op; wait-free) ----
void add(metric_id id, std::uint64_t delta) noexcept;
void set(metric_id id, std::uint64_t value) noexcept;
void observe(metric_id id, std::uint64_t sample) noexcept;

// ---- Export ----
[[nodiscard]] std::uint64_t value(metric_id id) noexcept;
[[nodiscard]] std::vector<metric_snapshot> snapshot();
// Deterministic-key-order JSON object {"name": ..., ...}; histograms
// nest {"count","sum","mean","p50","max"} summaries. Values are whatever
// the process has counted — this is diagnostics, not report data.
[[nodiscard]] std::string metrics_json();

// Zeroes every slot (registrations survive). Test isolation only.
void reset_all_for_test();

#else  // PSSP_OBS == 0: the whole registry compiles to nothing.

[[nodiscard]] inline metric_id counter(std::string_view) { return 0; }
[[nodiscard]] inline metric_id gauge(std::string_view) { return 0; }
[[nodiscard]] inline metric_id histogram(std::string_view) { return 0; }
inline void add(metric_id, std::uint64_t) noexcept {}
inline void set(metric_id, std::uint64_t) noexcept {}
inline void observe(metric_id, std::uint64_t) noexcept {}
[[nodiscard]] inline std::uint64_t value(metric_id) noexcept { return 0; }
[[nodiscard]] inline std::vector<metric_snapshot> snapshot() { return {}; }
[[nodiscard]] inline std::string metrics_json() { return "{}"; }
inline void reset_all_for_test() {}

#endif  // PSSP_OBS

}  // namespace pssp::obs
