// Sharded campaign driver: fans a campaign_spec out across worker
// processes (dist::run_sharded) and writes the merged report — which is
// byte-identical to the single-process run at every shard count; CI pins
// that by diffing --shards 1 against --shards 4 output.
//
// --scaling runs the same campaign at several shard counts, verifies all
// reports are byte-identical, and emits BENCH_shard.json: the shard-count
// scaling curve (wall seconds, trials/sec, speedup vs the first count).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <csignal>

#include "campaign/engine.hpp"
#include "dist/orchestrator.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "store/store.hpp"
#include "vm/dispatch.hpp"

#include <optional>

namespace {

using namespace pssp;

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--shards N] [--trials N] [--jobs N] [--seed S]\n"
                 "          [--budget Q] [--full] [--fresh-masters]\n"
                 "          [--adaptive] [--target H] [--round-blocks N]\n"
                 "          [--min-trials N]\n"
                 "          [--worker PATH] [--json PATH|-] [--table]\n"
                 "          [--scaling N1,N2,...] [--bench-json PATH|-]\n"
                 "  --shards N   worker processes (default 1; still fork/exec)\n"
                 "  --trials N   trials per campaign cell (default 112)\n"
                 "  --jobs N     total worker threads, split across shards\n"
                 "               (default 1; 0 = all cores)\n"
                 "  --seed S     master seed (default 2018)\n"
                 "  --budget Q   oracle-query budget per trial (default 4096)\n"
                 "  --full       full_spec(): every campaign-capable scheme\n"
                 "  --fresh-masters  disable the master snapshot-reuse pool\n"
                 "  --adaptive   CI-driven adaptive allocation: fixed rounds\n"
                 "               over the block space, cells stop when their\n"
                 "               Wilson CI half-width reaches the target;\n"
                 "               --trials becomes the per-cell budget. The\n"
                 "               merged report stays byte-identical at every\n"
                 "               shard count and jobs level.\n"
                 "  --target H   adaptive CI half-width target (default 0.05)\n"
                 "  --round-blocks N  blocks per adaptive round (default:\n"
                 "               one per cell)\n"
                 "  --min-trials N   per-cell trial floor before a cell may\n"
                 "               stop (default 64)\n"
                 "  --worker PATH    campaign worker binary (default: sibling\n"
                 "               tools_campaign_worker)\n"
                 "  --dispatch M VM dispatch engine: threaded (default) or\n"
                 "               switch; exported to workers via\n"
                 "               PSSP_VM_DISPATCH (merged report is identical\n"
                 "               either way)\n"
                 "  --json PATH  write the merged report JSON ('-' = stdout)\n"
                 "  --table      print the human-readable outcome matrix\n"
                 "  --scaling L  run at each shard count in the comma list,\n"
                 "               assert byte-identical reports, emit the\n"
                 "               scaling curve to --bench-json\n"
                 "  --bench-json PATH  BENCH_shard.json destination\n"
                 "  --telemetry PATH  per-round summary JSONL ('-' = stderr):\n"
                 "               blocks/trials issued, widest CI half-width,\n"
                 "               per-shard wall/user/sys times. Side channel\n"
                 "               only — never changes the report\n"
                 "  --trace-out PATH  Chrome trace_event JSON of the\n"
                 "               orchestrator's spans (rounds, worker\n"
                 "               lifetimes, wire encode/decode) — load in\n"
                 "               chrome://tracing or Perfetto\n"
                 "  --progress   live round progress on stderr (off by\n"
                 "               default; stderr only, stdout untouched)\n"
                 "  --max-attempts N  attempts per worker job before the run\n"
                 "               fails loudly (default 3; 1 = fail fast)\n"
                 "  --timeout S  per-attempt worker deadline in seconds;\n"
                 "               overdue workers are SIGKILLed and retried\n"
                 "               (default 0 = no deadline)\n"
                 "  --backoff S  base retry backoff in seconds, doubled per\n"
                 "               failed attempt (default 0.05)\n"
                 "  --checkpoint DIR  persist validated block partials to a\n"
                 "               crash-resumable checkpoint in DIR\n"
                 "  --resume     continue the checkpoint in --checkpoint DIR\n"
                 "               (spec digest must match); completed work is\n"
                 "               replayed, only missing work re-runs, and the\n"
                 "               final report is byte-identical\n"
                 "  --kill-after-round N  test hook: raise(SIGKILL) right\n"
                 "               after round N is checkpointed — simulates an\n"
                 "               orchestrator crash for --resume testing\n"
                 "  --faults-json PATH  recovery counters as JSON after the\n"
                 "               run (retries, requeued blocks, timeouts,\n"
                 "               crashes, spawned workers, wall seconds)\n"
                 "  --store DIR  stream every accepted block partial and\n"
                 "               round summary into a columnar result store\n"
                 "               in DIR (query with tools_campaign_query;\n"
                 "               side channel only — report bytes identical\n"
                 "               store on or off). With --resume, continues\n"
                 "               an existing store. Not valid with --scaling\n"
                 "  --store-compact N  compact the store's log into column\n"
                 "               segments every N rounds (default 4; 0 =\n"
                 "               only at finalize)\n"
                 "  --metrics-out PATH  dump the obs metric registry as\n"
                 "               deterministic JSON at exit ('-' = stdout)\n"
                 "  --workers N  network fleet mode: run rounds over a TCP\n"
                 "               coordinator that self-spawns N localhost\n"
                 "               tools_campaign_node daemons. The report is\n"
                 "               byte-identical to the local pipe transport\n"
                 "               at every worker count\n"
                 "  --listen [HOST:]PORT  network mode with an explicit bind\n"
                 "               address instead of a self-spawned fleet;\n"
                 "               start tools_campaign_node --connect HOST:PORT\n"
                 "               on the workers yourself (0 = ephemeral port,\n"
                 "               printed on stderr)\n"
                 "  --lease S    per-lease deadline in seconds before the\n"
                 "               holder is evicted and the job requeued\n"
                 "               (default: --timeout, 0 = no deadline)\n"
                 "  --heartbeat S  worker heartbeat interval in seconds\n"
                 "               (default 0.25); a worker silent for 8\n"
                 "               intervals is evicted\n"
                 "  --register-wait S  seconds to wait for the first worker\n"
                 "               registration before failing (default 30)\n"
                 "  --net-json PATH  network transport counters as JSON after\n"
                 "               the run (connections, leases, heartbeats,\n"
                 "               evictions, reconnects, requeues)\n",
                 argv0);
}

std::vector<unsigned> parse_count_list(const char* text) {
    std::vector<unsigned> counts;
    const char* p = text;
    while (*p != '\0') {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0) return {};
        counts.push_back(static_cast<unsigned>(v));
        p = end;
        if (*p == ',') ++p;
        else if (*p != '\0') return {};
    }
    return counts;
}

bool write_text(const char* path, const std::string& text) {
    if (!std::strcmp(path, "-")) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::ofstream out{path, std::ios::binary};
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return false;
    }
    out << text;
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    campaign::campaign_spec spec = campaign::default_spec();
    spec.trials_per_cell = 112;
    dist::sharded_options options;
    const char* json_path = nullptr;
    const char* bench_json_path = nullptr;
    const char* trace_path = nullptr;
    std::vector<unsigned> scaling;
    bool table = false;
    bool progress = false;
    const char* faults_json_path = nullptr;
    unsigned long long kill_after_round = 0;
    const char* store_dir = nullptr;
    unsigned long long store_compact = 4;
    const char* metrics_out_path = nullptr;
    unsigned net_workers = 0;
    const char* listen_spec = nullptr;
    double lease_seconds = 0.0;
    double heartbeat_seconds = 0.0;
    double register_wait_seconds = 0.0;
    const char* net_json_path = nullptr;

    for (int i = 1; i < argc; ++i) {
        auto next_value = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--shards")) {
            options.shards = static_cast<unsigned>(
                std::strtoul(next_value("--shards"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--trials")) {
            spec.trials_per_cell = std::strtoull(next_value("--trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--jobs")) {
            spec.jobs = static_cast<unsigned>(
                std::strtoul(next_value("--jobs"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--seed")) {
            spec.master_seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--budget")) {
            spec.query_budget = std::strtoull(next_value("--budget"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--full")) {
            // Swap the axes, keep every knob set so far.
            auto full = campaign::full_spec();
            spec.schemes = std::move(full.schemes);
            spec.attacks = std::move(full.attacks);
            spec.targets = std::move(full.targets);
        } else if (!std::strcmp(argv[i], "--fresh-masters")) {
            spec.reuse_masters = false;
        } else if (!std::strcmp(argv[i], "--adaptive")) {
            spec.adaptive = true;
        } else if (!std::strcmp(argv[i], "--target")) {
            spec.target_ci_halfwidth =
                std::strtod(next_value("--target"), nullptr);
        } else if (!std::strcmp(argv[i], "--round-blocks")) {
            spec.round_blocks =
                std::strtoull(next_value("--round-blocks"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--min-trials")) {
            spec.min_trials_per_cell =
                std::strtoull(next_value("--min-trials"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--worker")) {
            options.worker_path = next_value("--worker");
        } else if (!std::strcmp(argv[i], "--dispatch")) {
            const char* value = next_value("--dispatch");
            const auto mode = vm::dispatch_from_string(value);
            if (!mode) {
                std::fprintf(stderr, "--dispatch must be threaded or switch\n");
                return 2;
            }
            vm::set_default_dispatch(*mode);
            // Exported before the orchestrator forks so every worker
            // process runs the same engine.
            ::setenv("PSSP_VM_DISPATCH", value, /*overwrite=*/1);
        } else if (!std::strcmp(argv[i], "--json")) {
            json_path = next_value("--json");
        } else if (!std::strcmp(argv[i], "--table")) {
            table = true;
        } else if (!std::strcmp(argv[i], "--scaling")) {
            scaling = parse_count_list(next_value("--scaling"));
            if (scaling.empty()) {
                std::fprintf(stderr, "--scaling needs a comma list like 1,2,4\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--bench-json")) {
            bench_json_path = next_value("--bench-json");
        } else if (!std::strcmp(argv[i], "--telemetry")) {
            options.telemetry_path = next_value("--telemetry");
        } else if (!std::strcmp(argv[i], "--trace-out")) {
            trace_path = next_value("--trace-out");
        } else if (!std::strcmp(argv[i], "--progress")) {
            progress = true;
        } else if (!std::strcmp(argv[i], "--max-attempts")) {
            options.faults.max_attempts = static_cast<unsigned>(
                std::strtoul(next_value("--max-attempts"), nullptr, 10));
        } else if (!std::strcmp(argv[i], "--timeout")) {
            options.faults.timeout_seconds =
                std::strtod(next_value("--timeout"), nullptr);
        } else if (!std::strcmp(argv[i], "--backoff")) {
            options.faults.backoff_base_seconds =
                std::strtod(next_value("--backoff"), nullptr);
        } else if (!std::strcmp(argv[i], "--checkpoint")) {
            options.checkpoint_dir = next_value("--checkpoint");
        } else if (!std::strcmp(argv[i], "--resume")) {
            options.resume = true;
        } else if (!std::strcmp(argv[i], "--kill-after-round")) {
            kill_after_round =
                std::strtoull(next_value("--kill-after-round"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--faults-json")) {
            faults_json_path = next_value("--faults-json");
        } else if (!std::strcmp(argv[i], "--store")) {
            store_dir = next_value("--store");
        } else if (!std::strcmp(argv[i], "--store-compact")) {
            store_compact =
                std::strtoull(next_value("--store-compact"), nullptr, 10);
        } else if (!std::strcmp(argv[i], "--metrics-out")) {
            metrics_out_path = next_value("--metrics-out");
        } else if (!std::strcmp(argv[i], "--workers")) {
            net_workers = static_cast<unsigned>(
                std::strtoul(next_value("--workers"), nullptr, 10));
            if (net_workers == 0) {
                std::fprintf(stderr, "--workers must be >= 1\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--listen")) {
            listen_spec = next_value("--listen");
        } else if (!std::strcmp(argv[i], "--lease")) {
            lease_seconds = std::strtod(next_value("--lease"), nullptr);
        } else if (!std::strcmp(argv[i], "--heartbeat")) {
            heartbeat_seconds = std::strtod(next_value("--heartbeat"), nullptr);
        } else if (!std::strcmp(argv[i], "--register-wait")) {
            register_wait_seconds =
                std::strtod(next_value("--register-wait"), nullptr);
        } else if (!std::strcmp(argv[i], "--net-json")) {
            net_json_path = next_value("--net-json");
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (options.shards == 0) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
    }
    if (options.faults.max_attempts == 0) {
        std::fprintf(stderr, "--max-attempts must be >= 1\n");
        return 2;
    }
    if (options.resume && options.checkpoint_dir.empty()) {
        std::fprintf(stderr, "--resume needs --checkpoint DIR\n");
        return 2;
    }
    if (kill_after_round != 0 && options.checkpoint_dir.empty()) {
        std::fprintf(stderr, "--kill-after-round needs --checkpoint DIR\n");
        return 2;
    }
    if (store_dir != nullptr && !scaling.empty()) {
        // Scaling mode runs the same campaign repeatedly; a store records
        // one campaign execution.
        std::fprintf(stderr, "--store cannot be combined with --scaling\n");
        return 2;
    }
    if (net_workers != 0 && listen_spec != nullptr) {
        std::fprintf(stderr,
                     "--workers (self-spawned fleet) and --listen (external "
                     "workers) are mutually exclusive\n");
        return 2;
    }
    if (net_workers != 0 || listen_spec != nullptr) {
        if (!scaling.empty()) {
            std::fprintf(stderr, "--scaling is a local-transport benchmark; "
                                 "run network counts separately\n");
            return 2;
        }
        dist::net_options net;
        if (listen_spec != nullptr) {
            // [HOST:]PORT — split on the last ':' so a future bracketed v6
            // literal parses as one host token.
            const std::string text = listen_spec;
            const auto colon = text.rfind(':');
            const std::string port_text =
                colon == std::string::npos ? text : text.substr(colon + 1);
            if (colon != std::string::npos) net.listen_host = text.substr(0, colon);
            char* end = nullptr;
            const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
            if (end == port_text.c_str() || *end != '\0' || port > 65535) {
                std::fprintf(stderr, "--listen needs [HOST:]PORT, got \"%s\"\n",
                             listen_spec);
                return 2;
            }
            net.listen_port = static_cast<std::uint16_t>(port);
        }
        net.fleet_workers = net_workers;
        net.on_listen = [host = net.listen_host](std::uint16_t port) {
            std::fprintf(stderr, "coordinator listening on %s:%u\n",
                         host.c_str(), static_cast<unsigned>(port));
        };
        if (lease_seconds > 0.0) net.lease_seconds = lease_seconds;
        if (heartbeat_seconds > 0.0) net.heartbeat_seconds = heartbeat_seconds;
        if (register_wait_seconds > 0.0)
            net.register_wait_seconds = register_wait_seconds;
        options.net = std::move(net);
    }

    if (trace_path != nullptr) obs::enable_tracing(true);
    std::uint64_t blocks_done = 0;
    if (progress || kill_after_round != 0) {
        // Live progress, stderr only; stdout stays the report's. Built on
        // the same side-channel summaries --telemetry serializes. The
        // kill-after-round hook rides the same observer: summaries are
        // emitted after the round is checkpointed, so dying here leaves
        // exactly N rounds durable on disk.
        options.round_observer = [&blocks_done, progress,
                                  kill_after_round](const obs::round_summary& r) {
            blocks_done += r.blocks;
            if (progress)
                std::fprintf(
                    stderr,
                    "round %llu: %llu blocks (%llu so far), %llu trials "
                    "(%llu cumulative), widest CI half-width %.4f (%s)%s\n",
                    static_cast<unsigned long long>(r.round),
                    static_cast<unsigned long long>(r.blocks),
                    static_cast<unsigned long long>(blocks_done),
                    static_cast<unsigned long long>(r.trials),
                    static_cast<unsigned long long>(r.cumulative_trials),
                    r.max_halfwidth, r.widest_cell.c_str(),
                    r.resumed ? " [resumed]" : "");
            if (kill_after_round != 0 && !r.resumed &&
                r.round == kill_after_round) {
                std::fprintf(stderr,
                             "killing orchestrator after round %llu "
                             "(--kill-after-round)\n",
                             static_cast<unsigned long long>(r.round));
                std::fflush(nullptr);
                ::raise(SIGKILL);
            }
        };
    }
    // Written on every exit path below that returns from a completed run.
    auto dump_trace = [trace_path] {
        if (trace_path == nullptr) return true;
        if (!write_text(trace_path,
                        obs::chrome_trace_json("tools_campaign_shard")))
            return false;
        std::fprintf(stderr, "trace written to %s\n", trace_path);
        return true;
    };
    // The registry snapshot at exit; deterministic key order, so two runs
    // of the same campaign diff cleanly.
    auto dump_metrics = [metrics_out_path] {
        if (metrics_out_path == nullptr) return true;
        return write_text(metrics_out_path, obs::metrics_json() + "\n");
    };

    try {
        std::optional<store::store_writer> result_store;
        if (store_dir != nullptr) {
            store::writer_options wopts;
            wopts.compact_every_rounds = store_compact;
            result_store.emplace(store::store_writer::open(
                store_dir, spec, options.resume, wopts));
            store::store_writer* s = &*result_store;
            options.block_ingest =
                [s](std::uint64_t round,
                    std::span<const dist::partial_block> blocks) {
                    s->ingest_blocks(round, blocks);
                };
            // Store ingest runs before the progress/kill observer: a
            // --kill-after-round death still lands the round it just saw.
            options.round_observer =
                [s, prev = std::move(options.round_observer)](
                    const obs::round_summary& r) {
                    s->ingest_round(r);
                    if (prev) prev(r);
                };
        }
        if (!scaling.empty()) {
            // Scaling-curve mode: same campaign at each count, byte-identity
            // asserted across all of them.
            std::string reference;
            std::string bench;
            double base_seconds = 0.0;
            bench += "{\n  \"bench\": \"campaign_shard\",\n";
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "  \"trials\": %llu,\n  \"cells\": %llu,\n"
                          "  \"jobs\": %u,\n  \"counts\": [\n",
                          static_cast<unsigned long long>(spec.trial_count()),
                          static_cast<unsigned long long>(spec.cell_count()),
                          spec.jobs);
            bench += buf;
            for (std::size_t i = 0; i < scaling.size(); ++i) {
                dist::sharded_options run_options = options;
                run_options.shards = scaling[i];
                const auto start = std::chrono::steady_clock::now();
                const auto report = dist::run_sharded(spec, run_options);
                const double seconds = std::chrono::duration<double>(
                                           std::chrono::steady_clock::now() - start)
                                           .count();
                // Adaptive runs execute fewer trials than the budget; rate
                // the curve on what actually ran.
                const std::uint64_t executed = report.total_trials();
                const auto json = report.to_json();
                if (reference.empty()) {
                    reference = json;
                    base_seconds = seconds;
                } else if (json != reference) {
                    std::fprintf(stderr,
                                 "FAIL: report at --shards %u differs from "
                                 "--shards %u\n",
                                 scaling[i], scaling[0]);
                    return 1;
                }
                std::snprintf(
                    buf, sizeof buf,
                    "    {\"shards\": %u, \"wall_seconds\": %.3f, "
                    "\"trials_executed\": %llu, "
                    "\"trials_per_sec\": %.1f, \"speedup\": %.2f}%s\n",
                    scaling[i], seconds,
                    static_cast<unsigned long long>(executed),
                    static_cast<double>(executed) / seconds,
                    base_seconds / seconds, i + 1 < scaling.size() ? "," : "");
                bench += buf;
                std::fprintf(stderr, "--shards %u: %.3fs (report %s)\n",
                             scaling[i], seconds,
                             i == 0 ? "reference" : "identical");
            }
            bench += "  ]\n}\n";
            if (json_path != nullptr && !write_text(json_path, reference + "\n"))
                return 1;
            if (bench_json_path != nullptr && !write_text(bench_json_path, bench))
                return 1;
            std::fprintf(stderr, "all %zu shard counts byte-identical\n",
                         scaling.size());
            return dump_trace() && dump_metrics() ? 0 : 1;
        }

        const auto run_start = std::chrono::steady_clock::now();
        const auto report = dist::run_sharded(spec, options);
        const double run_seconds = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() -
                                       run_start)
                                       .count();
        if (result_store.has_value()) {
            result_store->finalize(report, obs::metrics_json());
            std::fprintf(
                stderr,
                "store %s: %llu block(s) ingested, %llu dup(s) skipped, "
                "%llu segment(s)\n",
                store_dir,
                static_cast<unsigned long long>(
                    result_store->ingested_blocks()),
                static_cast<unsigned long long>(result_store->skipped_blocks()),
                static_cast<unsigned long long>(
                    result_store->segments_written()));
        }
        if (table) std::printf("%s\n", report.to_table().c_str());
        if (json_path != nullptr &&
            !write_text(json_path, report.to_json() + "\n"))
            return 1;
        if (faults_json_path != nullptr) {
            // Recovery counters from the obs registry (side channel;
            // registration is idempotent, so these ids match the
            // supervisor's). All zeros on a clean run.
            auto count = [](const char* name) {
                return static_cast<unsigned long long>(
                    obs::value(obs::counter(name)));
            };
            char buf[512];
            std::snprintf(
                buf, sizeof buf,
                "{\n  \"bench\": \"dist_faults\",\n"
                "  \"wall_seconds\": %.3f,\n"
                "  \"shards\": %u,\n  \"max_attempts\": %u,\n"
                "  \"timeout_seconds\": %.3f,\n"
                "  \"spawned_workers\": %llu,\n  \"retries\": %llu,\n"
                "  \"requeued_blocks\": %llu,\n  \"timeouts\": %llu,\n"
                "  \"crashes\": %llu,\n  \"bad_partials\": %llu\n}\n",
                run_seconds, options.shards, options.faults.max_attempts,
                options.faults.timeout_seconds, count("dist.spawned_workers"),
                count("dist.retries"), count("dist.requeued_blocks"),
                count("dist.timeouts"), count("dist.crashes"),
                count("dist.bad_partials"));
            if (!write_text(faults_json_path, buf)) return 1;
        }
        if (net_json_path != nullptr) {
            // Network transport counters (obs registry side channel; all
            // names registered idempotently by the coordinator). A clean
            // fleet run shows connections == workers and zero evictions.
            auto count = [](const char* name) {
                return static_cast<unsigned long long>(
                    obs::value(obs::counter(name)));
            };
            char buf[512];
            std::snprintf(
                buf, sizeof buf,
                "{\n  \"bench\": \"dist_net\",\n"
                "  \"wall_seconds\": %.3f,\n"
                "  \"shards\": %u,\n  \"workers\": %u,\n"
                "  \"connections\": %llu,\n  \"leases\": %llu,\n"
                "  \"heartbeats\": %llu,\n  \"evictions\": %llu,\n"
                "  \"reconnects\": %llu,\n  \"retries\": %llu,\n"
                "  \"requeued_blocks\": %llu,\n  \"timeouts\": %llu,\n"
                "  \"crashes\": %llu\n}\n",
                run_seconds, options.shards, net_workers,
                count("dist.net.connections"), count("dist.net.leases"),
                count("dist.net.heartbeats"), count("dist.net.evictions"),
                count("dist.net.reconnects"), count("dist.retries"),
                count("dist.requeued_blocks"), count("dist.timeouts"),
                count("dist.crashes"));
            if (!write_text(net_json_path, buf)) return 1;
        }
        return dump_trace() && dump_metrics() ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
