// Relocatable binary image and linker.
//
// An `image` is the compiler's output: named functions of decoded
// instructions with symbolic call targets and local labels, plus data
// objects and native-import declarations. `link()` lays the image out at
// realistic virtual addresses and produces a `linked_binary` — the unit the
// binary rewriter instruments and the loader turns into a vm::program.
//
// Two link modes mirror the paper's deployment split (Section V-C/D):
//   * dynamic_glibc — libc entry points resolve to PLT slots bound to
//     native (host) handlers; the P-SSP runtime retargets them at load
//     time, the LD_PRELOAD analog. Instrumentation adds zero bytes.
//   * static_glibc  — libc is VM code embedded in .text; upgrading the
//     binary to P-SSP requires the Dyninst-style appended code section,
//     which is where Table II's 2.78% static expansion comes from.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/isa.hpp"
#include "vm/program.hpp"

namespace pssp::binfmt {

enum class link_mode : std::uint8_t { dynamic_glibc, static_glibc };

[[nodiscard]] std::string to_string(link_mode mode);

// A function under construction. Labels are function-local: allocate with
// new_label(), bind with place(), reference from jump builders.
class bin_function {
  public:
    bin_function(std::string name, bool from_libc)
        : name_{std::move(name)}, from_libc_{from_libc} {}

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] bool from_libc() const noexcept { return from_libc_; }

    [[nodiscard]] std::uint32_t new_label() noexcept { return next_label_++; }

    // Binds `label` to the next emitted instruction.
    void place(std::uint32_t label);

    void emit(vm::instruction insn);
    void emit(std::initializer_list<vm::instruction> insns);

    [[nodiscard]] const std::vector<vm::instruction>& insns() const noexcept {
        return insns_;
    }
    [[nodiscard]] const std::unordered_map<std::uint32_t, std::uint32_t>& labels()
        const noexcept {
        return label_at_;
    }

    // Total modeled encoding size in bytes.
    [[nodiscard]] std::uint64_t size_bytes() const noexcept;

  private:
    std::string name_;
    bool from_libc_;
    std::vector<vm::instruction> insns_;
    std::unordered_map<std::uint32_t, std::uint32_t> label_at_;
    std::uint32_t next_label_ = 0;
    std::vector<std::uint32_t> pending_labels_;
};

// A .data/.bss object.
struct data_object {
    std::string name;
    std::size_t size = 0;
    std::vector<std::uint8_t> init;  // may be shorter than size (zero-filled)
};

class image {
  public:
    // Interns `name` into the symbol table and returns its id — usable as a
    // call target (isa::call_sym) or a mov_ri address relocation before the
    // symbol is even defined.
    [[nodiscard]] std::uint32_t sym(const std::string& name);
    [[nodiscard]] const std::string& sym_name(std::uint32_t id) const;

    // Adds an empty function and returns a reference for emitting into.
    // References stay valid: functions are stored via unique_ptr.
    bin_function& add_function(const std::string& name, bool from_libc = false);
    [[nodiscard]] bin_function* find_function(const std::string& name) noexcept;
    [[nodiscard]] const std::vector<std::unique_ptr<bin_function>>& functions()
        const noexcept {
        return functions_;
    }

    void add_data(data_object obj);
    [[nodiscard]] const std::vector<data_object>& data() const noexcept { return data_; }

    // Declares a host-native import (e.g. AES_ENCRYPT_128, or glibc string
    // functions in dynamic mode).
    void add_native_import(const std::string& name, vm::native_fn fn);

    struct linked_binary;
    [[nodiscard]] linked_binary link(link_mode mode) const;

  private:
    std::vector<std::string> symtab_;
    std::unordered_map<std::string, std::uint32_t> sym_ids_;
    std::vector<std::unique_ptr<bin_function>> functions_;
    std::unordered_map<std::string, std::size_t> function_index_;
    std::vector<data_object> data_;
    std::vector<std::pair<std::string, vm::native_fn>> native_imports_;
};

// Post-link function: owns its (address-annotated) instructions so the
// rewriter can splice ranges without disturbing neighbors.
struct linked_function {
    std::string name;
    std::uint64_t entry = 0;
    std::vector<vm::instruction> insns;
    std::vector<std::uint64_t> addrs;  // parallel to insns
    bool from_libc = false;
    bool appended = false;  // lives in the rewriter's appended section

    [[nodiscard]] std::uint64_t size_bytes() const noexcept;
    // Recomputes addrs from `entry` and instruction encodings.
    void relayout() noexcept;
};

// The linked executable. Mutable by design: the binary rewriter edits it in
// place under the same-length constraint, then the loader snapshots it into
// an immutable vm::program.
struct image::linked_binary {
    link_mode mode = link_mode::dynamic_glibc;
    std::vector<linked_function> functions;
    std::unordered_map<std::string, std::uint64_t> symbols;       // code + plt
    std::unordered_map<std::string, std::uint64_t> data_symbols;  // globals
    std::unordered_map<std::uint64_t, vm::native_fn> natives;     // addr -> fn
    std::uint64_t text_base = 0;
    std::uint64_t text_end = 0;   // first free address after .text (+appended)
    std::uint64_t plt_bytes = 0;  // size of the PLT analog (dynamic mode)
    std::uint64_t data_bytes = 0;
    std::vector<std::uint8_t> data_init;  // initial globals content
    std::uint64_t data_base = 0;

    [[nodiscard]] linked_function* find(const std::string& name) noexcept;
    [[nodiscard]] const linked_function* find(const std::string& name) const noexcept;

    // Sum of function bytes (the .text section, including appended code).
    [[nodiscard]] std::uint64_t text_bytes() const noexcept;

    // Replaces instructions [first, first+count) of `fn` with `repl`.
    // Enforces the rewriter's layout-preservation rule: the replacement
    // must encode to exactly the same number of bytes. Throws otherwise.
    void replace_range(linked_function& fn, std::size_t first, std::size_t count,
                       std::vector<vm::instruction> repl);

    // Appends `code` as a new function in a fresh section after .text
    // (Dyninst analog); returns its entry address.
    std::uint64_t append_function(const std::string& name, bin_function code);

    // Rebinds (or binds) the native handler for symbol `name`; creates a
    // PLT-like native slot if the symbol is unknown. This is the
    // LD_PRELOAD analog used by the P-SSP runtime.
    void bind_native(const std::string& name, vm::native_fn fn);

    // Snapshots into an executable program (flattening all functions and
    // rebuilding the address index).
    [[nodiscard]] std::shared_ptr<const vm::program> make_program() const;
};

using linked_binary = image::linked_binary;

// One row of a layout snapshot: where a function sits and how many bytes
// it occupies, plus every symbol address. Two snapshots compare equal iff
// nothing the rewriter must preserve has moved.
struct layout_entry {
    std::string name;
    std::uint64_t entry = 0;
    std::uint64_t bytes = 0;

    friend bool operator==(const layout_entry&, const layout_entry&) = default;
};

struct layout_snapshot {
    std::vector<layout_entry> functions;          // layout order
    std::vector<std::pair<std::string, std::uint64_t>> symbols;  // sorted

    friend bool operator==(const layout_snapshot&, const layout_snapshot&) = default;
};

// Captures the address layout of `binary`. The rewriter's in-place edits
// must leave the snapshot of the pre-existing entries bit-identical;
// static-mode appends may only *extend* it (audit::layout_preserved).
[[nodiscard]] layout_snapshot take_layout_snapshot(const linked_binary& binary);

// True when `post` equals `pre` up to appended additions: every pre entry
// unchanged (same name/entry/bytes at the same rank; same symbol
// addresses) and anything new strictly after/extra.
[[nodiscard]] bool layout_preserved(const layout_snapshot& pre,
                                    const layout_snapshot& post);

// Default virtual layout.
inline constexpr std::uint64_t default_text_base = 0x0000000000401000ull;
inline constexpr std::uint64_t default_plt_base = 0x0000000000400100ull;
inline constexpr std::uint64_t plt_entry_bytes = 16;

}  // namespace pssp::binfmt
