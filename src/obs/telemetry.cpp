#include "obs/telemetry.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

namespace pssp::obs {

telemetry_writer::~telemetry_writer() {
    if (fd_ >= 0 && owned_) ::close(fd_);
}

bool telemetry_writer::open(const std::string& path) {
    if (path == "-") {
        fd_ = 2;  // stderr, unowned
        owned_ = false;
        return true;
    }
    int fd = -1;
    while ((fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND,
                        0644)) < 0 &&
           errno == EINTR) {
    }
    if (fd < 0) {
        std::fprintf(stderr, "telemetry: cannot write %s\n", path.c_str());
        return false;
    }
    fd_ = fd;
    owned_ = true;
    return true;
}

void telemetry_writer::append(const round_summary& round) {
    if (fd_ < 0) return;
    // The whole line, newline included, as one write(2): a concurrent
    // reader sees the line complete or not at all, never torn. A short
    // write (possible only against a pipe/ENOSPC) falls back to resuming
    // at the cut — at that point atomicity is already lost and durability
    // wins.
    auto line = round_summary_json(round);
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "telemetry: write failed (%s)\n",
                     std::strerror(errno));
        return;
    }
}

std::string round_summary_json(const round_summary& round) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"round\": %llu, \"blocks\": %llu, \"trials\": %llu, "
                  "\"cumulative_trials\": %llu, \"max_halfwidth\": %.6f, "
                  "\"widest_cell\": \"%s\", \"wall_seconds\": %.3f",
                  static_cast<unsigned long long>(round.round),
                  static_cast<unsigned long long>(round.blocks),
                  static_cast<unsigned long long>(round.trials),
                  static_cast<unsigned long long>(round.cumulative_trials),
                  round.max_halfwidth, round.widest_cell.c_str(),
                  round.wall_seconds);
    std::string json = buf;
    if (!round.shards.empty()) {
        json += ", \"shards\": [";
        for (std::size_t i = 0; i < round.shards.size(); ++i) {
            const auto& s = round.shards[i];
            std::snprintf(buf, sizeof buf,
                          "%s{\"shard\": %u, \"wall\": %.3f, \"user\": %.3f, "
                          "\"sys\": %.3f",
                          i == 0 ? "" : ", ", s.shard, s.wall_seconds,
                          s.user_seconds, s.sys_seconds);
            json += buf;
            // Only network campaigns name workers — local lines unchanged.
            if (!s.worker.empty()) json += ", \"worker\": \"" + s.worker + "\"";
            json += "}";
        }
        json += "]";
    }
    if (round.retries != 0 || round.requeued_blocks != 0 ||
        round.timeouts != 0 || round.evictions != 0 || round.reconnects != 0 ||
        round.resumed) {
        std::snprintf(buf, sizeof buf,
                      ", \"recovery\": {\"retries\": %llu, "
                      "\"requeued_blocks\": %llu, \"timeouts\": %llu",
                      static_cast<unsigned long long>(round.retries),
                      static_cast<unsigned long long>(round.requeued_blocks),
                      static_cast<unsigned long long>(round.timeouts));
        json += buf;
        // Network-transport totals appear only when nonzero, keeping every
        // pre-network telemetry line byte-identical.
        if (round.evictions != 0 || round.reconnects != 0) {
            std::snprintf(buf, sizeof buf,
                          ", \"evictions\": %llu, \"reconnects\": %llu",
                          static_cast<unsigned long long>(round.evictions),
                          static_cast<unsigned long long>(round.reconnects));
            json += buf;
        }
        json += std::string{", \"resumed\": "} +
                (round.resumed ? "true" : "false") + "}";
    }
    json += "}";
    return json;
}

}  // namespace pssp::obs
