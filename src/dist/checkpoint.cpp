#include "dist/checkpoint.hpp"

#include <cstdio>
#include <stdexcept>

#include <sys/stat.h>
#include <unistd.h>

#include "util/bytes.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace pssp::dist {

namespace {

// Every line in rounds.log is {"ckpt":<body>,"fnv":"<16 hex>"} — fixed
// prefix/suffix widths so the hashed body substring is recoverable
// without parsing.
constexpr std::string_view line_prefix = "{\"ckpt\":";
constexpr std::string_view fnv_prefix = ",\"fnv\":\"";
constexpr std::size_t fnv_hex_digits = 16;
// fnv_prefix + 16 hex digits + "}
constexpr std::size_t line_suffix_size = fnv_prefix.size() + fnv_hex_digits + 2;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error{"checkpoint: " + what};
}

std::string meta_json(std::uint64_t digest) {
    std::string out = "{\"checkpoint\":{";
    util::append_kv(out, "version",
                    static_cast<std::uint64_t>(checkpoint_version));
    util::append_kv(out, "spec_digest", digest, /*comma=*/false);
    out += "}}\n";
    return out;
}

checkpoint_entry parse_log_line(const std::string& path, std::size_t line_no,
                                std::string_view line) {
    auto bad = [&path, line_no](const std::string& why) -> std::runtime_error {
        return std::runtime_error{"checkpoint: " + path + " line " +
                                  std::to_string(line_no) + ": " + why};
    };
    if (line.size() < line_prefix.size() + line_suffix_size + 2 ||
        line.substr(0, line_prefix.size()) != line_prefix)
        throw bad("truncated or malformed entry");
    const std::string_view suffix = line.substr(line.size() - line_suffix_size);
    if (suffix.substr(0, fnv_prefix.size()) != fnv_prefix ||
        suffix.substr(line_suffix_size - 2) != "\"}")
        throw bad("truncated or malformed entry (bad integrity suffix)");
    std::uint64_t expected = 0;
    if (!util::parse_hex16(suffix.substr(fnv_prefix.size(), fnv_hex_digits),
                           expected))
        throw bad("malformed integrity hash");
    const std::string_view body = line.substr(
        line_prefix.size(), line.size() - line_prefix.size() - line_suffix_size);
    const std::uint64_t computed = util::fnv1a64(body);
    if (computed != expected) {
        char have[2 * fnv_hex_digits + 32];
        std::snprintf(have, sizeof have, "stored %016llx, computed %016llx",
                      static_cast<unsigned long long>(expected),
                      static_cast<unsigned long long>(computed));
        throw bad(std::string{"integrity hash mismatch ("} + have +
                  ") — entry is corrupt");
    }
    checkpoint_entry entry;
    try {
        const auto doc = util::parse_json(body);
        entry.round = doc.at("round").as_u64();
        for (const auto& b : doc.at("blocks").elements())
            entry.blocks.push_back(partial_block_from_json(b));
    } catch (const std::exception& e) {
        throw bad(std::string{"unreadable entry: "} + e.what());
    }
    return entry;
}

}  // namespace

checkpoint_log::checkpoint_log(std::string dir, std::uint64_t digest,
                               int log_fd)
    : dir_{std::move(dir)}, digest_{digest}, log_fd_{log_fd} {}

checkpoint_log::checkpoint_log(checkpoint_log&& other) noexcept
    : dir_{std::move(other.dir_)},
      digest_{other.digest_},
      log_fd_{other.log_fd_},
      appended_rounds_{other.appended_rounds_},
      appended_blocks_{other.appended_blocks_},
      entries_{std::move(other.entries_)} {
    other.log_fd_ = -1;
}

checkpoint_log::~checkpoint_log() {
    if (log_fd_ >= 0) ::close(log_fd_);
}

checkpoint_log checkpoint_log::create(const std::string& dir,
                                      std::uint64_t digest) {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        fail("cannot create directory " + dir);
    std::string existing;
    if (util::read_file(dir + "/meta.json", existing))
        fail("refusing to overwrite existing checkpoint in " + dir +
             " (pass --resume to continue it, or delete it first)");
    util::write_file_atomic(dir, "meta.json", meta_json(digest));
    // A stale rounds.log with no meta.json is debris, not progress.
    const int fd = util::open_append(dir + "/rounds.log", /*truncate=*/true);
    checkpoint_log log{dir, digest, fd};
    log.write_state();
    return log;
}

checkpoint_log checkpoint_log::open_for_resume(const std::string& dir,
                                               std::uint64_t digest) {
    std::string meta;
    if (!util::read_file(dir + "/meta.json", meta))
        fail(dir + " is not a checkpoint directory (missing meta.json)");
    std::uint64_t stored_version = 0;
    std::uint64_t stored_digest = 0;
    try {
        const auto doc = util::parse_json(meta);
        const auto& c = doc.at("checkpoint");
        stored_version = c.at("version").as_u64();
        stored_digest = c.at("spec_digest").as_u64();
    } catch (const std::exception& e) {
        fail(dir + "/meta.json is unreadable: " + e.what());
    }
    if (stored_version != checkpoint_version)
        fail(dir + ": checkpoint version " + std::to_string(stored_version) +
             " != " + std::to_string(checkpoint_version));
    if (stored_digest != digest)
        fail(dir + ": spec digest mismatch (checkpoint " +
             std::to_string(stored_digest) + ", this run " +
             std::to_string(digest) +
             ") — this checkpoint belongs to a different campaign");

    // Stream the log line by line (util::scan_lines) instead of slurping
    // it: a huge campaign's checkpoint replays in bounded memory, paying
    // only for the decoded entries themselves.
    const std::string log_path = dir + "/rounds.log";
    checkpoint_log log{dir, digest, -1};
    util::line_scan_result scan;
    util::scan_lines(  // absent log = checkpoint died pre-round-1
        log_path,
        [&log, &log_path](std::size_t line_no, std::string_view line) {
            auto entry = parse_log_line(log_path, line_no, line);
            log.appended_blocks_ += entry.blocks.size();
            log.entries_.push_back(std::move(entry));
        },
        scan);
    if (scan.torn_tail)
        throw std::runtime_error{
            "checkpoint: " + log_path + " line " +
            std::to_string(scan.lines + 1) +
            ": truncated entry (no trailing newline) — the log is damaged"};
    log.appended_rounds_ = log.entries_.size();
    log.log_fd_ = util::open_append(log_path, /*truncate=*/false);
    return log;
}

void checkpoint_log::append(std::uint64_t round,
                            std::span<const partial_block> blocks) {
    std::string body = "{";
    util::append_kv(body, "round", round);
    body += "\"blocks\":[";
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (i > 0) body += ',';
        append_partial_block(body, blocks[i]);
    }
    body += "]}";

    std::string line;
    line.reserve(body.size() + line_prefix.size() + line_suffix_size + 1);
    line += line_prefix;
    line += body;
    line += fnv_prefix;
    util::append_hex16(line, util::fnv1a64(body));
    line += "\"}\n";

    const std::string log_path = dir_ + "/rounds.log";
    util::write_all(log_fd_, line, log_path);
    if (::fsync(log_fd_) != 0) fail("fsync failed on " + log_path);
    appended_rounds_ += 1;
    appended_blocks_ += blocks.size();
    write_state();
}

void checkpoint_log::write_state() const {
    std::string out = "{\"state\":{";
    util::append_kv(out, "spec_digest", digest_);
    util::append_kv(out, "rounds", appended_rounds_);
    util::append_kv(out, "blocks", appended_blocks_, /*comma=*/false);
    out += "}}\n";
    util::write_file_atomic(dir_, "state.json", out);
}

}  // namespace pssp::dist
