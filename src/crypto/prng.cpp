#include "crypto/prng.hpp"

namespace pssp::crypto {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

xoshiro256::xoshiro256(std::uint64_t seed) noexcept : state_{} {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
}

xoshiro256::result_type xoshiro256::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t xoshiro256::below(std::uint64_t bound) noexcept {
    // Lemire-style rejection: draw until the value falls inside the largest
    // multiple of `bound`, guaranteeing exact uniformity.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t x = (*this)();
        if (x >= threshold) return x % bound;
    }
}

void xoshiro256::fill(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
        const std::uint64_t word = (*this)();
        for (unsigned b = 0; b < 8; ++b)
            out[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
        i += 8;
    }
    if (i < out.size()) {
        const std::uint64_t word = (*this)();
        for (unsigned b = 0; i < out.size(); ++i, ++b)
            out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
}

void xoshiro256::long_jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> jump = {
        0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull, 0x77710069854ee241ull,
        0x39109bb02acbe635ull};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : jump) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (std::uint64_t{1} << bit)) {
                for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
            }
            (void)(*this)();
        }
    }
    state_ = acc;
}

xoshiro256 xoshiro256::split() noexcept {
    // Reseed the child through splitmix64 from fresh parent output. A
    // long-jumped copy would NOT work for siblings: jumping from states one
    // step apart yields streams one step apart, i.e. almost fully
    // overlapping windows. Splitmix expansion decorrelates the lanes.
    const std::uint64_t seed = (*this)() ^ 0x6a09e667f3bcc909ull;
    return xoshiro256{seed};
}

}  // namespace pssp::crypto
