// Table IV: P-SSP's impact on database servers.
//
// Paper row: MySQL 3.33 ms & 22.59 MB in all three builds; SQLite 167.27 ms
// (167 instrumented) & 20.58 MB — i.e. no measurable change in either query
// time or memory.
// Method: the mysql_m / sqlite_m query-loop analogs run under native,
// compiler P-SSP and instrumented P-SSP builds; we report mean modeled
// cycles per query and the process resident footprint.

#include "bench_util.hpp"
#include "workload/database.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;
using workload::deployment;

struct cell {
    double query_cycles;
    double resident_mb;
};

cell measure(const workload::db_profile& profile, scheme_kind kind, deployment dep) {
    const auto mod = workload::make_db_module(profile);
    workload::harness_options opt;
    opt.dep = dep;
    opt.entry = "db_main";
    const auto m = workload::measure_module(mod, kind, opt);
    return {static_cast<double>(m.cycles) / static_cast<double>(profile.queries),
            static_cast<double>(m.resident_bytes) / (1024.0 * 1024.0)};
}

}  // namespace

int main() {
    bench::print_header("Table IV — database server query cost and memory",
                        "Table IV (MySQL 3.33 ms / 22.59 MB; SQLite 167.27 ms / 20.58 MB)");

    util::text_table table{{"server", "metric", "Native", "Compiler P-SSP",
                            "Instrumented P-SSP"}};

    for (const auto& profile : {workload::mysql_profile(), workload::sqlite_profile()}) {
        const cell native = measure(profile, scheme_kind::none, deployment::compiler_based);
        const cell compiled = measure(profile, scheme_kind::p_ssp, deployment::compiler_based);
        const cell instrumented =
            measure(profile, scheme_kind::p_ssp32, deployment::instrumented_dynamic);

        table.add_row({profile.name, "query cycles", util::fmt(native.query_cycles, 1),
                       util::fmt(compiled.query_cycles, 1),
                       util::fmt(instrumented.query_cycles, 1)});
        table.add_row({profile.name, "memory (MiB)", util::fmt(native.resident_mb, 2),
                       util::fmt(compiled.resident_mb, 2),
                       util::fmt(instrumented.resident_mb, 2)});
        std::printf("%s query-cost overhead: compiler %s, instrumented %s\n",
                    profile.name.c_str(),
                    util::fmt_percent(util::overhead_percent(
                        native.query_cycles, compiled.query_cycles)).c_str(),
                    util::fmt_percent(util::overhead_percent(
                        native.query_cycles, instrumented.query_cycles)).c_str());
    }

    std::printf("\n%s\n", table.render("Table IV — per-query cost and memory").c_str());
    std::printf("paper: all three columns identical at their reported precision;\n"
                "canary work and TLS state vanish inside a database transaction.\n");
    return 0;
}
