// Virtual memory of a simulated process.
//
// A small set of byte-addressable regions with W^X-style access checks:
//   * stack   — grows downward from stack_top; where canaries live and
//               where every overflow in this library actually lands;
//   * tls     — the thread-local storage block addressed via %fs. The TLS
//               canary C sits at fs+0x28 and the P-SSP shadow canary pair
//               (C0, C1) at fs+0x2a8..0x2b7, mirroring Section V-A;
//   * globals — .data/.bss analog for workload state and request buffers.
// Code is NOT mapped here: instruction fetch goes through the program
// object, so stray data writes can never modify text (and reads/writes to
// text addresses fault, as under a standard W^X policy).
//
// Storage is one contiguous buffer with the regions laid out back to back
// at page-aligned offsets; address resolution walks a three-entry flat
// descriptor array (stack first — it is by far the hottest region). The
// interpreter uses the noexcept try_* accessors and turns a null result
// into a segfault trap without unwinding; the throwing accessors remain
// for native helpers, the attack harness, and tests, and raise mem_fault
// exactly as before.
//
// Every store also marks the touched 4 KiB page dirty on two independent
// channels, which is what makes process snapshot/restore and fork cheap:
//   * channel restore — consumed by restore_from(): "pages changed since
//     the snapshot this memory was cloned from" (master reboot in the
//     trial pool);
//   * channel fork    — consumed by sync_from(): "pages where two
//     once-identical images have since diverged" (recycling one worker
//     machine across fork-per-request serves).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pssp::vm {

// Default layout; chosen to look like a Linux x86-64 process.
inline constexpr std::uint64_t default_globals_base = 0x0000000000601000ull;
inline constexpr std::uint64_t default_globals_size = 256 * 1024;
inline constexpr std::uint64_t default_stack_top = 0x00007ffffffff000ull;
inline constexpr std::uint64_t default_stack_size = 256 * 1024;
inline constexpr std::uint64_t default_tls_base = 0x00007f7700000000ull;
inline constexpr std::uint64_t default_tls_size = 4096;

// Thrown on out-of-bounds or permission-violating access.
class mem_fault : public std::runtime_error {
  public:
    mem_fault(std::uint64_t addr, std::size_t size, const std::string& what)
        : std::runtime_error{what}, addr_{addr}, size_{size} {}
    [[nodiscard]] std::uint64_t addr() const noexcept { return addr_; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

  private:
    std::uint64_t addr_;
    std::size_t size_;
};

// Region layout of a process image. At namespace scope (not nested) so it
// can serve as a defaulted constructor argument.
struct mem_layout {
    std::uint64_t globals_base = default_globals_base;
    std::uint64_t globals_size = default_globals_size;
    std::uint64_t stack_top = default_stack_top;
    std::uint64_t stack_size = default_stack_size;
    std::uint64_t tls_base = default_tls_base;
    std::uint64_t tls_size = default_tls_size;
};

// The two independent dirty-page tracking channels; see the header comment.
enum class dirty_channel : unsigned { restore = 0, fork = 1 };

class memory {
  public:
    using layout = mem_layout;

    static constexpr std::size_t page_bytes = 4096;

    explicit memory(const layout& lay = layout{});

    // Value accessors. Multi-byte accesses are little-endian and must lie
    // entirely inside one region. These throw mem_fault on violation.
    [[nodiscard]] std::uint8_t load8(std::uint64_t addr) const;
    [[nodiscard]] std::uint32_t load32(std::uint64_t addr) const;
    [[nodiscard]] std::uint64_t load64(std::uint64_t addr) const;
    void store8(std::uint64_t addr, std::uint8_t value);
    void store32(std::uint64_t addr, std::uint32_t value);
    void store64(std::uint64_t addr, std::uint64_t value);

    // Bulk accessors for native helpers and the attack harness.
    void read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const;
    void write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);

    // ---- Exception-free fast path (the interpreter's accessors) ----
    // Pointer to [addr, addr+size) if mapped within one region, else null.
    [[nodiscard]] const std::uint8_t* try_at(std::uint64_t addr,
                                             std::size_t size) const noexcept {
        for (const auto& d : desc_) {
            const std::uint64_t off = addr - d.base;
            if (off < d.size && size <= d.size - off) return buf_.data() + d.off + off;
        }
        return nullptr;
    }

    // Mutable variant; marks the touched pages dirty on both channels.
    [[nodiscard]] std::uint8_t* try_at_mut(std::uint64_t addr,
                                           std::size_t size) noexcept {
        for (const auto& d : desc_) {
            const std::uint64_t off = addr - d.base;
            if (off < d.size && size <= d.size - off) {
                mark_dirty(d.off + off, size);
                return buf_.data() + d.off + off;
            }
        }
        return nullptr;
    }

    // ---- Snapshot / restore / fork fast paths ----
    // Resets dirty tracking on one channel or both.
    void mark_clean(dirty_channel channel) noexcept;
    void mark_all_clean() noexcept;

    // Rewinds this memory to `snap` (an earlier copy of *this* taken when
    // the restore channel was clean), copying only pages dirtied since.
    // Restored pages are re-marked dirty on the fork channel, so a worker
    // synced against this image still observes the change. Throws if the
    // two images have different layouts.
    void restore_from(const memory& snap);

    // Makes this memory byte-identical to `src`, assuming the two were
    // identical when both fork channels were last cleared: copies the union
    // of both sides' fork-dirty pages from `src`, then clears both fork
    // channels. The cheap half of fork(). Throws on layout mismatch.
    void sync_from(memory& src);

    // Dirty page count on `channel` (tests and pool statistics).
    [[nodiscard]] std::size_t dirty_pages(dirty_channel channel) const noexcept;

    // True if [addr, addr+size) is mapped within a single region.
    [[nodiscard]] bool contains(std::uint64_t addr, std::size_t size = 1) const noexcept;

    [[nodiscard]] const layout& regions() const noexcept { return layout_; }

    // Direct spans, used by tests that inspect raw stack bytes around the
    // canary and by the leak-oriented attack code.
    [[nodiscard]] std::span<const std::uint8_t> stack_bytes() const noexcept;
    [[nodiscard]] std::span<const std::uint8_t> tls_bytes() const noexcept;
    [[nodiscard]] std::span<const std::uint8_t> globals_bytes() const noexcept;

    // Resident set analog: bytes of backing store, for Table IV's memory
    // usage column.
    [[nodiscard]] std::size_t resident_bytes() const noexcept;

  private:
    // Region descriptor: virtual base/size plus the region's offset into
    // the contiguous backing buffer. Offsets (not raw pointers) keep the
    // default copy operations correct.
    struct descriptor {
        std::uint64_t base = 0;
        std::uint64_t size = 0;
        std::size_t off = 0;
    };

    layout layout_;
    std::array<descriptor, 3> desc_{};  // lookup order: stack, globals, tls
    std::vector<std::uint8_t> buf_;
    // One bit per page of buf_, per channel.
    std::array<std::vector<std::uint64_t>, 2> dirty_{};

    void mark_dirty(std::size_t buf_off, std::size_t size) noexcept {
        if (size == 0) return;  // the -1 below would wrap
        const std::size_t first = buf_off / page_bytes;
        const std::size_t last = (buf_off + size - 1) / page_bytes;
        for (std::size_t p = first; p <= last; ++p) {
            const std::uint64_t bit = std::uint64_t{1} << (p & 63);
            dirty_[0][p >> 6] |= bit;
            dirty_[1][p >> 6] |= bit;
        }
    }
};

}  // namespace pssp::vm
