// Ablation for Section VII-C: three ways to deploy P-SSP without growing
// the stack canary slot beyond SSP's single word.
//
//   * P-SSP     — 16-byte stack canary (the layout change instrumentation
//                 cannot afford);
//   * P-SSP-32  — one word, 32+32-bit split (the paper's instrumentation
//                 choice; halves entropy);
//   * P-SSP-GB  — one word on the stack, full 64-bit entropy, C1 kept in a
//                 per-process global buffer cloned across fork (the
//                 paper's proposed fix, Fig 6).
//
// Compared on: stack bytes per frame, entropy, per-call cycle cost, BROP
// prevention, and fork-correctness.

#include "attack/byte_by_byte.hpp"
#include "bench_util.hpp"
#include "workload/webserver.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;

double per_call_cycles(scheme_kind kind) {
    compiler::ir_module mod;
    mod.name = "micro";
    auto& fn = mod.add_function("micro");
    (void)compiler::add_local(fn, "buf", 16, /*is_buffer=*/true);
    fn.body.push_back(compiler::return_stmt{compiler::const_ref{1}});
    auto& main_fn = mod.add_function("main");
    const int i = compiler::add_local(main_fn, "i");
    const int r = compiler::add_local(main_fn, "r");
    compiler::loop_stmt loop{i, 1000, {}};
    loop.body.push_back(compiler::call_stmt{"micro", {}, r});
    main_fn.body.push_back(loop);

    const auto with = workload::measure_module(mod, kind, {});
    const auto without = workload::measure_module(mod, scheme_kind::none, {});
    return (static_cast<double>(with.cycles) - static_cast<double>(without.cycles)) /
           1000.0;
}

bool brop_prevented(scheme_kind kind, unsigned canary_bytes) {
    const auto profile = workload::nginx_profile();
    bench::server_under_test sut{profile, kind, 61};
    attack::byte_by_byte_config cfg;
    cfg.prefix_bytes = workload::attack_prefix_bytes(profile);
    cfg.canary_bytes = canary_bytes;
    cfg.max_trials = 2500;
    attack::byte_by_byte atk{sut.server, cfg};
    return !atk.run_campaign(sut.binary.symbols.at("win"), sut.binary.data_base)
                .hijacked;
}

bool fork_correct(scheme_kind kind) {
    bench::server_under_test sut{workload::nginx_profile(), kind, 62};
    for (int i = 0; i < 4; ++i)
        if (sut.server.serve("GET /").outcome != proc::worker_outcome::ok) return false;
    return true;
}

}  // namespace

int main() {
    bench::print_header("Ablation — preserving the SSP stack layout (Section VII-C)",
                        "Section V-C caveat vs Section VII-C global-buffer proposal");

    struct variant {
        scheme_kind kind;
        const char* stack_slot;
        const char* entropy;
        unsigned attack_width;
    };
    const variant variants[] = {
        {scheme_kind::p_ssp, "16 bytes (layout change!)", "64-bit", 16},
        {scheme_kind::p_ssp32, "8 bytes (SSP layout)", "32-bit", 8},
        {scheme_kind::p_ssp_gb, "8 bytes (SSP layout)", "64-bit", 8},
        // Section VII-C's rejected strawman, included as a measured
        // negative result: layout-preserving and BROP-resistant, but
        // "the program is doomed to crash" across fork.
        {scheme_kind::p_ssp_c0tls, "8 bytes (SSP layout)", "64-bit", 8},
    };

    util::text_table table{{"variant", "stack canary slot", "entropy",
                            "cycles/call", "BROP prevented", "fork-correct"}};
    for (const auto& v : variants) {
        table.add_row({core::to_string(v.kind), v.stack_slot, v.entropy,
                       util::fmt(per_call_cycles(v.kind), 0),
                       brop_prevented(v.kind, v.attack_width) ? "yes" : "NO",
                       fork_correct(v.kind) ? "yes" : "NO"});
    }
    std::printf("%s\n", table.render("Layout-preserving P-SSP variants").c_str());
    std::printf("paper (Section VII-C): the rejected C0-in-TLS design is exactly as\n"
                "cheap and as layout-friendly as hoped — and fork-incorrect, as the\n"
                "paper predicted ('the program is doomed to crash'). The global\n"
                "buffer restores the full 64-bit canary while keeping the SSP stack\n"
                "layout, at the cost of rdrand in the prologue and the per-thread\n"
                "buffer — measured above.\n");
    return 0;
}
