// Deterministic round-based adaptive trial allocation.
//
// Fixed allocation runs trials_per_cell trials in every cell even though
// Table I's probabilities differ across cells by orders of magnitude — a
// cell sitting at a detection rate of ~0 or ~1 has a tight Wilson interval
// after one reduction block, while a mid-range cell needs many. The
// allocator reclaims that waste: the campaign runs in rounds over the
// canonical 64-trial block space (campaign::blocks_for), and after each
// round every cell's Wilson CIs are recomputed from its merged block
// partials. Cells whose half-width has reached spec.target_ci_halfwidth
// stop; the next round's blocks go to the widest-CI cells first
// (half-width descending, cell index ascending as the tiebreak).
//
// Determinism contract — the part PR 3's identity oracle extends over:
//  * A round plan is a pure function of the merged partials recorded so
//    far, which are themselves pure functions of (master_seed, block).
//    Nothing about execution order, jobs, shard count, or wall clock can
//    move an allocation decision.
//  * Stopping decisions consume only integer tallies (trials, hijacks,
//    detections) through util::wilson_interval — no float whose value
//    could depend on merge order.
//  * A cell's executed blocks are always a prefix of its canonical blocks,
//    so the final report is campaign::assemble_report over a subset of
//    blocks_for(spec) in canonical order — the same reduction the fixed
//    engine and the dist merge bottom out in.
//
// The engine's round loop (in-process) and the dist orchestrator's round
// fan-out (multi-process) both drive exactly this class, which is why an
// adaptive campaign is byte-identical at any --jobs level and any shard
// count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "campaign/campaign.hpp"

namespace pssp::campaign {

// The convergence metric: the wider of the cell's detection and hijack
// Wilson 95% half-widths (both are reported with CIs, so both must be
// tight before the cell may stop). 0.5 for an empty cell — the vacuous
// {0,1} interval.
[[nodiscard]] double cell_ci_halfwidth(const cell_partial& merged);

class adaptive_allocator {
  public:
    // Validates the adaptive knobs (target_ci_halfwidth must be finite and
    // >= 0). Degenerate specs (empty axis, trials_per_cell == 0) are legal
    // and simply start out done().
    explicit adaptive_allocator(campaign_spec spec);

    // The next round's blocks, ascending by canonical block index. Empty
    // means the campaign is finished (every cell converged or exhausted
    // its trials_per_cell budget). Throws std::logic_error if the previous
    // round has not been record_round()ed yet.
    [[nodiscard]] std::vector<block_ref> plan_round();

    // Records a completed round: `blocks` must be exactly the last
    // plan_round() result and `partials` index-aligned with it.
    void record_round(std::span<const block_ref> blocks,
                      std::span<const cell_partial> partials);

    // Checkpoint replay: plan_round() + validate that the checkpointed
    // blocks are exactly the plan + record_round(). Because a round plan
    // is a pure function of the rounds recorded before it, feeding a
    // resumed allocator the checkpointed rounds in order reconstructs its
    // state bit-for-bit; any divergence (spec edited, log from a different
    // run) throws std::runtime_error naming the round and block. Throws if
    // the allocator is already done and a round is still being replayed.
    void replay_round(std::uint64_t round, std::span<const block_ref> blocks,
                      std::span<const cell_partial> partials);

    // True once plan_round() would return empty (and no round is pending).
    [[nodiscard]] bool done() const;

    [[nodiscard]] std::uint64_t rounds_completed() const noexcept {
        return rounds_completed_;
    }
    // Trials recorded so far — the quantity the savings benchmark compares
    // against spec.trial_count().
    [[nodiscard]] std::uint64_t trials_run() const noexcept {
        return trials_run_;
    }

    // Per-cell introspection (cell indexed as in campaign::cells_for).
    [[nodiscard]] std::uint64_t cell_trials(std::uint64_t cell) const;
    [[nodiscard]] double cell_halfwidth(std::uint64_t cell) const;
    // Converged = stopped because the CI target was met (not merely
    // because the budget ran out).
    [[nodiscard]] bool cell_converged(std::uint64_t cell) const;

    // Every block recorded so far, ascending by canonical index, with its
    // partial — the inputs report() hands to campaign::assemble_report.
    [[nodiscard]] std::vector<block_ref> executed_blocks() const;
    [[nodiscard]] std::vector<cell_partial> executed_partials() const;

    // The campaign report over the executed blocks (typically called once
    // done(); legal earlier for progress snapshots).
    [[nodiscard]] campaign_report report() const;

  private:
    struct cell_state {
        std::uint64_t first_block = 0;   // canonical index of block 0
        std::uint64_t block_count = 0;   // canonical blocks in this cell
        std::uint64_t scheduled = 0;     // blocks handed out by plan_round
        cell_partial merged;             // in-order merge of recorded blocks
    };

    [[nodiscard]] std::uint64_t round_budget() const noexcept;
    [[nodiscard]] bool converged(const cell_state& c) const;
    [[nodiscard]] bool cell_active(const cell_state& c) const;

    campaign_spec spec_;
    std::vector<block_ref> canonical_;           // blocks_for(spec)
    std::vector<cell_state> cells_;
    std::vector<cell_partial> partials_;         // per canonical block
    std::vector<bool> recorded_;                 // per canonical block
    std::vector<block_ref> pending_;             // planned, not yet recorded
    bool round_in_flight_ = false;
    std::uint64_t rounds_completed_ = 0;
    std::uint64_t trials_run_ = 0;
};

}  // namespace pssp::campaign
