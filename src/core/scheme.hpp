// The protection-scheme interface: the compiler-pass half and the
// runtime-library half of each canary design, behind one abstraction.
//
// A scheme contributes three things:
//   1. frame planning  — where locals and canary slots sit in the frame
//      (P-SSP-LV interleaves per-variable canaries; everything else
//      reserves a contiguous canary area below the saved rbp);
//   2. code emission   — the prologue/epilogue instruction sequences of
//      Codes 1-9, emitted into the function being compiled;
//   3. runtime hooks   — the libpoly_canary analog: TLS initialization at
//      program startup and the fork/pthread_create wrappers.
//
// Everything an attacker interacts with (stack bytes, TLS words, the
// rdrand stream) is produced by the *emitted code executing in the VM*,
// not by host-side shortcuts — the hooks only do what the paper's 358-line
// shared library does.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "binfmt/image.hpp"
#include "crypto/one_way.hpp"
#include "crypto/prng.hpp"
#include "vm/machine.hpp"

namespace pssp::core {

enum class scheme_kind : std::uint8_t {
    none,       // no canary (the "native execution" baseline)
    ssp,        // classic Stack Smashing Protection (Codes 1/2)
    raf_ssp,    // renew-after-fork TLS canary (Marco-Gisbert & Ripoll)
    dynaguard,  // canary-address buffer, rewritten on fork (Petsios et al.)
    dcr,        // in-stack canary linked list (Hawkins et al.)
    p_ssp,      // the paper's basic scheme (Codes 3/4)
    p_ssp_nt,   // extension 1: per-call re-randomization, no TLS update
    p_ssp_lv,   // extension 2: per-critical-local-variable canaries
    p_ssp_owf,  // extension 3: one-way-function canary (AES-NI)
    p_ssp32,    // Section V-C: 32-bit pair packed into one word
    p_ssp_gb,   // Section VII-C: 64-bit pair via per-process global buffer
    p_ssp_c0tls,  // Section VII-C's REJECTED design: C0 in TLS, C1 on the
                  // stack. Layout-preserving but fork-incorrect — kept as a
                  // measured negative result.
};

[[nodiscard]] std::string to_string(scheme_kind kind);

// Inverse of to_string (exact match, e.g. "P-SSP"); throws
// std::invalid_argument on an unknown name. Wire formats and CLIs round
// scheme lists through this.
[[nodiscard]] scheme_kind scheme_kind_from_string(const std::string& name);

// Local-variable descriptor as seen by the frame planner.
struct local_desc {
    std::uint32_t size = 8;     // bytes
    bool is_buffer = false;     // char-array-like; triggers protection
    bool is_critical = false;   // member of V in Algorithm 2 (P-SSP-LV)
};

// One canary word (or word group) in a planned frame.
struct canary_slot {
    std::int32_t offset = 0;   // rbp-relative (negative), lowest byte
    std::int32_t bytes = 8;    // 8, 16 (P-SSP pair) or 24 (OWF nonce+ct)
    std::int32_t guards = -1;  // local index it guards; -1 = return address
};

// Where everything in a frame lives. Offsets are rbp-relative.
struct frame_plan {
    std::int32_t frame_bytes = 0;            // rsp adjustment (16-aligned)
    std::vector<std::int32_t> local_offsets; // per local_desc index
    std::vector<canary_slot> canaries;       // empty => unprotected function
    bool protected_frame = false;

    // The slot guarding the return address (first canary by convention).
    [[nodiscard]] const canary_slot& return_guard() const { return canaries.front(); }
};

// Tuning knobs for scheme construction.
struct scheme_options {
    crypto::owf_kind owf = crypto::owf_kind::aes128;  // P-SSP-OWF instantiation
    // P-SSP-LV: also re-check canaries immediately after calls to libc
    // writers (strcpy/memcpy/...), not only in the epilogue — the paper's
    // "timing of canary checking" discussion in Section V-E2.
    bool lv_check_after_write = false;
    // DCR deployment modeling: cycles charged per prologue/epilogue for the
    // Dyninst trampoline + register spills of its static rewriting.
    // Calibrated so the Table I bench lands in the paper's ">24%" band on
    // the SPEC-like suite (see DESIGN.md §5).
    std::uint32_t dcr_trampoline_cycles = 450;
};

class scheme {
  public:
    virtual ~scheme() = default;

    [[nodiscard]] virtual scheme_kind kind() const noexcept = 0;
    [[nodiscard]] virtual std::string name() const = 0;

    // True if a function with these locals should get a canary at all
    // (the -fstack-protector heuristic: any buffer-like local).
    [[nodiscard]] virtual bool wants_protection(
        const std::vector<local_desc>& locals) const;

    // Lays out locals and canary slots. Default: contiguous canary area of
    // stack_canary_bytes() at the frame top, buffers placed directly below
    // it (so overflows must cross the canary), scalars below the buffers.
    [[nodiscard]] virtual frame_plan plan_frame(
        const std::vector<local_desc>& locals) const;

    // Bytes of the contiguous return-address canary area (8 for SSP-likes,
    // 16 for the P-SSP pair, 24 for OWF).
    [[nodiscard]] virtual std::int32_t stack_canary_bytes() const noexcept = 0;

    // Emits canary installation code. Called right after the frame is set
    // up (push rbp; mov rbp,rsp; sub rsp,N).
    virtual void emit_prologue(binfmt::bin_function& f, binfmt::image& img,
                               const frame_plan& plan) const = 0;

    // Emits the canary check. Called immediately before leave/ret.
    virtual void emit_epilogue(binfmt::bin_function& f, binfmt::image& img,
                               const frame_plan& plan) const = 0;

    // Optional mid-function check after a libc write call (P-SSP-LV).
    virtual void emit_write_site_check(binfmt::bin_function& f, binfmt::image& img,
                                       const frame_plan& plan) const;

    // ---- Runtime half (libpoly_canary analog) ----
    // Program startup (the setup_p-ssp constructor): installs the TLS
    // canary C and any scheme-specific TLS/register state.
    virtual void runtime_setup(vm::machine& m, crypto::xoshiro256& rng) const;

    // Runs in the child after fork clones the TLS (the fork() wrapper).
    virtual void runtime_on_fork_child(vm::machine& child,
                                       crypto::xoshiro256& rng) const;

    // Runs in a newly spawned thread (the pthread_create wrapper).
    // Default: same treatment as a forked child.
    virtual void runtime_on_thread_create(vm::machine& thread,
                                          crypto::xoshiro256& rng) const;

    // Whether the scheme's fork wrapper touches the TLS at all — P-SSP does
    // (shadow refresh), P-SSP-NT does not (its whole point), RAF renews C
    // itself. Used by the deployment matrix in the compat bench.
    [[nodiscard]] virtual bool updates_tls_on_fork() const noexcept { return false; }

  protected:
    // Shared epilogue tail: je ok; call __stack_chk_fail; ok: — the ZF must
    // already reflect the canary comparison.
    static void emit_check_tail(binfmt::bin_function& f, binfmt::image& img);
};

// Constructs a scheme implementation.
[[nodiscard]] std::unique_ptr<scheme> make_scheme(scheme_kind kind,
                                                  const scheme_options& options = {});

// All kinds, in presentation order (handy for benches and tests).
[[nodiscard]] const std::vector<scheme_kind>& all_scheme_kinds();

}  // namespace pssp::core
