// Instruction set of the simulated 64-bit machine.
//
// The ISA is an x86-64 subset chosen to express, one-for-one, every
// instruction sequence printed in the paper (Codes 1-9): the SSP / P-SSP
// prologues and epilogues, the rdrand/rdtsc-based extensions, and the
// xmm-register dance of the AES-NI variant. Instructions carry an encoded
// byte length modeled after real x86-64 encodings so that
//   * functions occupy realistic spans of virtual address space,
//   * the binary rewriter can enforce the paper's same-length patching
//     constraint byte-for-byte, and
//   * Table II's code-expansion percentages are measurable.
#pragma once

#include <cstdint>
#include <string>

namespace pssp::vm {

// General-purpose registers, in x86-64 encoding order.
enum class reg : std::uint8_t {
    rax = 0,
    rcx = 1,
    rdx = 2,
    rbx = 3,
    rsp = 4,
    rbp = 5,
    rsi = 6,
    rdi = 7,
    r8 = 8,
    r9 = 9,
    r10 = 10,
    r11 = 11,
    r12 = 12,
    r13 = 13,
    r14 = 14,
    r15 = 15,
    none = 255,
};

inline constexpr std::size_t gpr_count = 16;

// 128-bit SSE registers (xmm0..xmm15), used by the P-SSP-OWF code paths.
enum class xreg : std::uint8_t {
    xmm0 = 0,
    xmm1 = 1,
    xmm15 = 15,
    none = 255,
};

inline constexpr std::size_t xmm_count = 16;

// Segment override for memory operands. The TLS canary lives at %fs:0x28
// and the P-SSP shadow canary at %fs:0x2a8 (Section V-A).
enum class segment : std::uint8_t { none, fs };

// Memory operand: [seg: base + disp]. Absolute addressing uses base = none
// with the absolute address in disp-extended form via the instruction's imm.
struct mem_operand {
    reg base = reg::none;
    std::int32_t disp = 0;
    segment seg = segment::none;
};

enum class opcode : std::uint8_t {
    nop,
    // Stack.
    push_r,   // push r1
    push_i,   // push imm (sign-extended imm32)
    pop_r,    // pop r1
    // 64-bit moves.
    mov_rr,  // r1 <- r2
    mov_ri,  // r1 <- imm64
    mov_rm,  // r1 <- [mem]
    mov_mr,  // [mem] <- r2
    mov_mi,  // [mem] <- imm32 (sign-extended)
    // 32-bit moves (write zero-extends, as on x86-64).
    mov32_rm,  // r1 <- zx([mem] 32-bit)
    mov32_mr,  // [mem] 32-bit <- low32(r2)
    // 8-bit moves for string routines.
    movzx8_rm,  // r1 <- zx([mem] 8-bit)
    mov8_mr,    // [mem] 8-bit <- low8(r2)
    lea,  // r1 <- address of mem
    // ALU (r1 is destination; flags updated like x86 where noted).
    add_rr,
    add_ri,
    sub_rr,
    sub_ri,  // also used by prologue stack allocation
    xor_rr,
    xor_ri,
    xor_rm,  // r1 ^= [mem] — the SSP epilogue's canary compare (Code 2)
    or_rr,
    and_ri,
    shl_ri,
    shr_ri,
    imul_rr,
    imul_ri,
    // Compare / test (set flags only).
    cmp_rr,
    cmp_ri,
    cmp_rm,
    test_rr,
    // Control flow. Jump targets are local label ids before assembly and
    // absolute byte addresses afterwards (held in imm).
    je,
    jne,
    jb,   // unsigned <
    jae,  // unsigned >=
    jl,   // signed <
    jge,  // signed >=
    jnc,  // carry clear — the rdrand retry idiom (Code 7 hardening)
    jmp,
    call,  // target: symbol before linking, absolute address after
    ret,
    leave,
    // Randomness / time (Codes 7 and 8).
    rdrand_r,  // r1 <- hardware entropy; CF=1 on success
    rdtsc,     // edx:eax <- timestamp counter
    // SSE subset for the AES-NI variant (Codes 8/9).
    movq_xr,       // x1.lo <- r2, x1.hi <- 0
    movq_rx,       // r1 <- x2.lo
    movhps_xm,     // x1.hi <- [mem] (64-bit)
    punpckhqdq_xr, // x1.hi <- r2 (models the paper's punpckhdq key packing)
    movdqu_mx,     // [mem] (128-bit) <- x2
    movdqu_xm,     // x1 <- [mem] (128-bit)
    cmp128_xm,     // ZF <- (x1 == [mem] 128-bit); models the Code 9 compare
    // System.
    syscall_i,   // syscall number in imm; arguments per SysV in rdi/rsi/rdx
    trap_abort,  // __GI__fortify_fail analog: terminate with stack-smashing
    hlt,
    // Modeling aid: charges `imm` cycles and occupies 5 bytes (a patched
    // jmp), standing in for relocated trampoline/spill code that a static
    // rewriter (DCR's Dyninst deployment) inserts but that we do not model
    // instruction-by-instruction. Semantically a no-op.
    sim_delay,
};

// Number of opcodes; sized for flat per-opcode tables (cost model,
// dispatch). sim_delay must stay the last enumerator.
inline constexpr std::size_t opcode_count =
    static_cast<std::size_t>(opcode::sim_delay) + 1;

// Sentinel for "no symbol / no label".
inline constexpr std::uint32_t no_id = 0xffffffffu;

// One decoded instruction. Fields are interpreted per the opcode comments
// above; unused fields keep their defaults.
struct instruction {
    opcode op = opcode::nop;
    reg r1 = reg::none;
    reg r2 = reg::none;
    xreg x1 = xreg::none;
    xreg x2 = xreg::none;
    mem_operand mem{};
    std::uint64_t imm = 0;       // immediate / resolved jump target address
    std::uint32_t sym = no_id;   // call target symbol (pre-link)
    std::uint32_t label = no_id; // local jump target label (pre-assembly)
};

// Modeled x86-64 encoding length of `insn`, in bytes.
[[nodiscard]] std::size_t encoded_length(const instruction& insn) noexcept;

// Human-readable disassembly (AT&T-flavored), for tests and debug dumps.
[[nodiscard]] std::string to_string(const instruction& insn);
[[nodiscard]] std::string reg_name(reg r);

// ---- Instruction builders -------------------------------------------------
// Small factory helpers so pass/codegen code reads like an assembler
// listing. They live in a nested namespace to keep call sites short:
//   using namespace pssp::vm::isa;
//   f.emit(push_r(reg::rbp));
namespace isa {

[[nodiscard]] instruction nop();
[[nodiscard]] instruction push_r(reg r);
[[nodiscard]] instruction push_i(std::int32_t v);
[[nodiscard]] instruction pop_r(reg r);
[[nodiscard]] instruction mov_rr(reg dst, reg src);
[[nodiscard]] instruction mov_ri(reg dst, std::uint64_t v);
[[nodiscard]] instruction mov_rm(reg dst, mem_operand m);
[[nodiscard]] instruction mov_mr(mem_operand m, reg src);
[[nodiscard]] instruction mov_mi(mem_operand m, std::int32_t v);
[[nodiscard]] instruction mov32_rm(reg dst, mem_operand m);
[[nodiscard]] instruction mov32_mr(mem_operand m, reg src);
[[nodiscard]] instruction movzx8_rm(reg dst, mem_operand m);
[[nodiscard]] instruction mov8_mr(mem_operand m, reg src);
[[nodiscard]] instruction lea(reg dst, mem_operand m);
[[nodiscard]] instruction add_rr(reg dst, reg src);
[[nodiscard]] instruction add_ri(reg dst, std::int32_t v);
[[nodiscard]] instruction sub_rr(reg dst, reg src);
[[nodiscard]] instruction sub_ri(reg dst, std::int32_t v);
[[nodiscard]] instruction xor_rr(reg dst, reg src);
[[nodiscard]] instruction xor_ri(reg dst, std::int32_t v);
[[nodiscard]] instruction xor_rm(reg dst, mem_operand m);
[[nodiscard]] instruction or_rr(reg dst, reg src);
[[nodiscard]] instruction and_ri(reg dst, std::int32_t v);
[[nodiscard]] instruction shl_ri(reg dst, std::uint8_t bits);
[[nodiscard]] instruction shr_ri(reg dst, std::uint8_t bits);
[[nodiscard]] instruction imul_rr(reg dst, reg src);
[[nodiscard]] instruction imul_ri(reg dst, std::int32_t v);
[[nodiscard]] instruction cmp_rr(reg a, reg b);
[[nodiscard]] instruction cmp_ri(reg a, std::int32_t v);
[[nodiscard]] instruction cmp_rm(reg a, mem_operand m);
[[nodiscard]] instruction test_rr(reg a, reg b);
[[nodiscard]] instruction je(std::uint32_t label);
[[nodiscard]] instruction jne(std::uint32_t label);
[[nodiscard]] instruction jb(std::uint32_t label);
[[nodiscard]] instruction jae(std::uint32_t label);
[[nodiscard]] instruction jl(std::uint32_t label);
[[nodiscard]] instruction jge(std::uint32_t label);
[[nodiscard]] instruction jnc(std::uint32_t label);
[[nodiscard]] instruction jmp(std::uint32_t label);
[[nodiscard]] instruction call_sym(std::uint32_t sym);
[[nodiscard]] instruction ret();
[[nodiscard]] instruction leave();
[[nodiscard]] instruction rdrand(reg dst);
[[nodiscard]] instruction rdtsc();
[[nodiscard]] instruction movq_xr(xreg dst, reg src);
[[nodiscard]] instruction movq_rx(reg dst, xreg src);
[[nodiscard]] instruction movhps_xm(xreg dst, mem_operand m);
[[nodiscard]] instruction punpckhqdq_xr(xreg dst, reg src);
[[nodiscard]] instruction movdqu_mx(mem_operand m, xreg src);
[[nodiscard]] instruction movdqu_xm(xreg dst, mem_operand m);
[[nodiscard]] instruction cmp128_xm(xreg a, mem_operand m);
[[nodiscard]] instruction syscall_i(std::uint32_t number);
[[nodiscard]] instruction trap_abort();
[[nodiscard]] instruction hlt();
[[nodiscard]] instruction sim_delay(std::uint32_t cycles);

// Memory-operand shorthands.
[[nodiscard]] mem_operand mem(reg base, std::int32_t disp);
[[nodiscard]] mem_operand fs(std::int32_t disp);

}  // namespace isa

// Linux-flavored syscall numbers understood by the process layer.
enum class syscall_no : std::uint32_t {
    sys_write = 1,
    sys_getpid = 39,
    sys_fork = 57,
    sys_exit = 60,
};

}  // namespace pssp::vm
