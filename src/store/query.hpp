// Query engine over a loaded result store.
//
// Aggregation recomputes everything from merged integer tallies — rates
// and Wilson intervals come out of campaign::finalize_cell over the
// deduplicated, index-ordered merge of a cell's block rows, never from
// stored floats — so a partial (still-running) store answers with exact
// statistics over the trials ingested so far.
//
// The identity oracle: reconstruct_report() rebuilds the campaign report
// from the store alone — canonical block refs filtered to the executed
// (ingested) indices, partials in canonical ascending order, reduced by
// the same campaign::assemble_report every execution path ends in. Over a
// complete store this is byte-identical to the report the campaign
// printed, whatever the jobs/shard/fault/resume history was; CI `cmp`s
// the two, and --verify checks the stored completion entry's report hash.
//
// Cross-campaign joins align cells by (target, scheme, attack) across
// stores of different campaigns — the head-to-head scheme-comparison view.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "store/reader.hpp"

namespace pssp::store {

struct query_filter {
    // Empty = no constraint on that axis.
    std::vector<core::scheme_kind> schemes;
    std::vector<attack::attack_kind> attacks;
    std::vector<workload::target_kind> targets;
    // Round provenance window (inclusive; blocks carry the round that
    // produced them, 0 for fixed runs).
    std::uint64_t min_round = 0;
    std::uint64_t max_round = std::numeric_limits<std::uint64_t>::max();

    [[nodiscard]] bool matches(const campaign::cell_id& id) const;
};

// Adds a value parsed from CLI text ("SSP", "leak_replay", ...) to the
// right axis; throws std::invalid_argument on an unknown name.
void add_scheme(query_filter& filter, const std::string& name);
void add_attack(query_filter& filter, const std::string& name);
void add_target(query_filter& filter, const std::string& name);

struct cell_aggregate {
    std::uint64_t cell = 0;  // canonical cell index
    campaign::cell_id id;
    campaign::cell_report report;  // finalize_cell over the merged rows
    std::uint64_t block_rows = 0;
    std::uint64_t first_round = 0;
    std::uint64_t last_round = 0;
};

// Block rows deduplicated by canonical block index (lowest ingest seq
// wins), ascending index — the canonical merge order.
[[nodiscard]] std::vector<block_row> dedup_blocks(const store_data& data);

// Per-cell aggregates (canonical cell order) over rows passing `filter`.
// Cells with no matching rows are omitted.
[[nodiscard]] std::vector<cell_aggregate> aggregate_cells(
    const store_data& data, const query_filter& filter);

// The identity oracle (see header comment). Throws if any row does not
// belong to the manifest spec's canonical block space.
[[nodiscard]] campaign::campaign_report reconstruct_report(
    const store_data& data);

// "target/scheme/attack", the cell naming used across telemetry.
[[nodiscard]] std::string cell_name(const campaign::cell_id& id);

// ---- render ----

[[nodiscard]] std::string aggregate_table(
    std::span<const cell_aggregate> cells);
[[nodiscard]] std::string aggregate_json(const store_data& data,
                                         std::span<const cell_aggregate> cells);

// Cross-store comparison: one row per (target, scheme, attack) present in
// any store, one detection/hijack column pair per store. `names` labels
// the columns (typically the directory names).
[[nodiscard]] std::string comparison_table(
    std::span<const store_data> stores, std::span<const std::string> names,
    const query_filter& filter);

}  // namespace pssp::store
