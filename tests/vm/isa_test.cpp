// Instruction encoding-length model and disassembly. The rewriter's
// layout-preservation guarantees are only as good as these lengths, so the
// byte counts of every sequence the paper patches are pinned here.

#include <gtest/gtest.h>

#include "core/tls_layout.hpp"
#include "vm/isa.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::encoded_length;
using vm::reg;
using vm::xreg;

TEST(encoding, push_pop_need_rex_for_high_registers) {
    EXPECT_EQ(encoded_length(push_r(reg::rbp)), 1u);
    EXPECT_EQ(encoded_length(push_r(reg::r12)), 2u);
    EXPECT_EQ(encoded_length(pop_r(reg::rdi)), 1u);
    EXPECT_EQ(encoded_length(pop_r(reg::r15)), 2u);
}

TEST(encoding, common_fixed_lengths) {
    EXPECT_EQ(encoded_length(nop()), 1u);
    EXPECT_EQ(encoded_length(mov_rr(reg::rax, reg::rdx)), 3u);
    EXPECT_EQ(encoded_length(mov_ri(reg::rax, 0x1122334455667788ull)), 10u);
    EXPECT_EQ(encoded_length(ret()), 1u);
    EXPECT_EQ(encoded_length(leave()), 1u);
    EXPECT_EQ(encoded_length(call_sym(0)), 5u);
    EXPECT_EQ(encoded_length(jmp(0)), 5u);
    EXPECT_EQ(encoded_length(je(0)), 6u);
    EXPECT_EQ(encoded_length(rdtsc()), 2u);
    EXPECT_EQ(encoded_length(trap_abort()), 2u);
}

TEST(encoding, displacement_widths) {
    // disp8 vs disp32 vs rbp-always-needs-disp.
    EXPECT_EQ(encoded_length(mov_rm(reg::rax, mem(reg::rcx, 0))), 3u);
    EXPECT_EQ(encoded_length(mov_rm(reg::rax, mem(reg::rbp, 0))), 4u);
    EXPECT_EQ(encoded_length(mov_rm(reg::rax, mem(reg::rbp, -8))), 4u);
    EXPECT_EQ(encoded_length(mov_rm(reg::rax, mem(reg::rbp, -200))), 7u);
}

TEST(encoding, fs_segment_prefix_adds_one_byte) {
    const auto plain = encoded_length(mov_rm(reg::rax, mem(reg::none, 0x28)));
    const auto with_fs = encoded_length(mov_rm(reg::rax, fs(0x28)));
    EXPECT_EQ(with_fs, plain + 1);
}

// The rewriter patch of Code 5 swaps %fs:0x28 for %fs:0x2a8 in the SSP
// prologue. Both must encode to the same length or the patch would shift
// every later instruction — the exact property Section V-C relies on.
TEST(encoding, prologue_tls_offset_patch_is_length_neutral) {
    EXPECT_EQ(encoded_length(mov_rm(reg::rax, fs(core::tls_canary))),
              encoded_length(mov_rm(reg::rax, fs(core::tls_shadow_c0))));
}

// Code 6's replacement epilogue must match the SSP epilogue byte count.
TEST(encoding, rewriter_epilogue_budget_matches) {
    const std::size_t original = encoded_length(xor_rm(reg::rdx, fs(0x28))) +
                                 encoded_length(je(0)) + encoded_length(call_sym(0));
    const std::size_t replacement =
        encoded_length(push_r(reg::rdi)) + encoded_length(mov_rr(reg::rdi, reg::rdx)) +
        encoded_length(call_sym(0)) + encoded_length(pop_r(reg::rdi)) +
        encoded_length(je(0)) + encoded_length(trap_abort()) + encoded_length(nop());
    EXPECT_EQ(original, replacement);
}

TEST(encoding, rdrand_width) {
    EXPECT_EQ(encoded_length(rdrand(reg::rax)), 4u);
    EXPECT_EQ(encoded_length(rdrand(reg::r9)), 5u);
}

TEST(encoding, sim_delay_models_a_patched_jmp) {
    EXPECT_EQ(encoded_length(sim_delay(1000)), 5u);
}

TEST(disasm, renders_att_flavor) {
    EXPECT_EQ(vm::to_string(push_r(reg::rbp)), "push %rbp");
    EXPECT_EQ(vm::to_string(mov_rm(reg::rax, fs(0x28))), "mov %fs:+40,%rax");
    EXPECT_EQ(vm::to_string(mov_mr(mem(reg::rbp, -8), reg::rax)),
              "mov %rax,-8(%rbp)");
    EXPECT_EQ(vm::to_string(xor_rr(reg::rdx, reg::rdi)), "xor %rdi,%rdx");
    EXPECT_EQ(vm::to_string(ret()), "retq");
    EXPECT_EQ(vm::to_string(rdrand(reg::rax)), "rdrand %rax");
    EXPECT_EQ(vm::to_string(je(3)), "je L3");
}

TEST(disasm, names_every_register) {
    EXPECT_EQ(vm::reg_name(reg::rax), "rax");
    EXPECT_EQ(vm::reg_name(reg::rsp), "rsp");
    EXPECT_EQ(vm::reg_name(reg::r15), "r15");
    EXPECT_EQ(vm::reg_name(reg::none), "<none>");
}

// Every opcode yields a nonzero length and a nonempty disassembly — guards
// against new opcodes missing a switch arm.
TEST(encoding, every_builder_has_length_and_text) {
    const vm::instruction all[] = {
        nop(), push_r(reg::rax), push_i(5), pop_r(reg::rax),
        mov_rr(reg::rax, reg::rbx), mov_ri(reg::rax, 1),
        mov_rm(reg::rax, mem(reg::rbp, -8)), mov_mr(mem(reg::rbp, -8), reg::rax),
        mov_mi(mem(reg::rbp, -8), 0), mov32_rm(reg::rax, mem(reg::rcx, 0)),
        mov32_mr(mem(reg::rcx, 0), reg::rax), movzx8_rm(reg::rax, mem(reg::rcx, 0)),
        mov8_mr(mem(reg::rcx, 0), reg::rax), lea(reg::rax, mem(reg::rbp, -8)),
        add_rr(reg::rax, reg::rbx), add_ri(reg::rax, 1), sub_rr(reg::rax, reg::rbx),
        sub_ri(reg::rax, 1), xor_rr(reg::rax, reg::rbx), xor_ri(reg::rax, 1),
        xor_rm(reg::rax, fs(0x28)), or_rr(reg::rax, reg::rbx), and_ri(reg::rax, 1),
        shl_ri(reg::rax, 3), shr_ri(reg::rax, 3), imul_rr(reg::rax, reg::rbx),
        imul_ri(reg::rax, 3), cmp_rr(reg::rax, reg::rbx), cmp_ri(reg::rax, 0),
        cmp_rm(reg::rax, mem(reg::rbp, -8)), test_rr(reg::rax, reg::rax), je(0),
        jne(0), jb(0), jae(0), jl(0), jge(0), jmp(0), call_sym(0), ret(), leave(),
        rdrand(reg::rax), rdtsc(), movq_xr(xreg::xmm1, reg::r13),
        movq_rx(reg::rax, xreg::xmm1), movhps_xm(xreg::xmm15, mem(reg::rbp, 8)),
        punpckhqdq_xr(xreg::xmm1, reg::r12),
        movdqu_mx(mem(reg::rbp, -24), xreg::xmm15),
        movdqu_xm(xreg::xmm15, mem(reg::rbp, -24)),
        cmp128_xm(xreg::xmm15, mem(reg::rbp, -24)), syscall_i(57), trap_abort(),
        hlt(), sim_delay(9)};
    for (const auto& insn : all) {
        EXPECT_GE(encoded_length(insn), 1u);
        EXPECT_FALSE(vm::to_string(insn).empty());
    }
}

}  // namespace
}  // namespace pssp
