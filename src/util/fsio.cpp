#include "util/fsio.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pssp::util {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
    throw std::runtime_error{what + " (" + std::strerror(errno) + ")"};
}

int open_retry(const char* path, int flags, mode_t mode = 0) {
    int fd = -1;
    while ((fd = ::open(path, flags, mode)) < 0 && errno == EINTR) {
    }
    return fd;
}

}  // namespace

void write_all(int fd, std::string_view bytes, const std::string& path) {
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        fail_errno("short write to " + path);
    }
}

bool read_file(const std::string& path, std::string& out) {
    out.clear();
    const int fd = open_retry(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) return false;
        fail_errno("cannot open " + path);
    }
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0) {
            const int err = errno;
            ::close(fd);
            errno = err;
            fail_errno("cannot read " + path);
        }
        break;
    }
    ::close(fd);
    return true;
}

void write_file_atomic(const std::string& dir, const std::string& name,
                       std::string_view body) {
    const std::string tmp = dir + "/" + name + ".tmp";
    const std::string final_path = dir + "/" + name;
    const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail_errno("cannot create " + tmp);
    write_all(fd, body, tmp);
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), final_path.c_str()) != 0)
        fail_errno("cannot rename " + tmp);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

int open_append(const std::string& path, bool truncate) {
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate) flags |= O_TRUNC;
    const int fd = open_retry(path.c_str(), flags, 0644);
    if (fd < 0) fail_errno("cannot open " + path);
    return fd;
}

bool scan_lines(const std::string& path,
                const std::function<void(std::size_t line_no,
                                         std::string_view line)>& fn,
                line_scan_result& result) {
    result = {};
    const int fd = open_retry(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) return false;
        fail_errno("cannot open " + path);
    }
    // `carry` holds the partial line spanning chunk boundaries; memory is
    // bounded by the longest line, not the file.
    std::string carry;
    char buf[1 << 16];
    std::size_t line_no = 0;
    try {
        for (;;) {
            const ssize_t n = ::read(fd, buf, sizeof buf);
            if (n < 0 && errno == EINTR) continue;
            if (n < 0) fail_errno("cannot read " + path);
            if (n == 0) break;
            std::string_view chunk{buf, static_cast<std::size_t>(n)};
            for (;;) {
                const std::size_t nl = chunk.find('\n');
                if (nl == std::string_view::npos) {
                    carry += chunk;
                    break;
                }
                ++line_no;
                std::string_view line = chunk.substr(0, nl);
                if (!carry.empty()) {
                    carry += line;
                    line = carry;
                }
                result.consumed_bytes += line.size() + 1;
                fn(line_no, line);
                carry.clear();
                chunk.remove_prefix(nl + 1);
            }
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    result.lines = line_no;
    result.torn_tail = !carry.empty();
    return true;
}

}  // namespace pssp::util
