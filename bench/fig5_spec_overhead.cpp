// Figure 5: runtime overhead of P-SSP against native executions on the
// SPEC CPU2006-like suite.
//
// Paper result: compiler-based P-SSP averages 0.24% over native;
// instrumentation-based averages 1.01%. The reproduced quantity is the
// per-benchmark overhead shape (call-dense programs near ~1%, loop-dense
// near ~0%) and the ~4x compiler-vs-instrumented gap; cycles are modeled
// (see DESIGN.md §5).

#include <vector>

#include "bench_util.hpp"
#include "workload/spec.hpp"

namespace {

using namespace pssp;
using core::scheme_kind;
using workload::deployment;
using workload::harness_options;
using workload::measure_module;

struct row {
    std::string name;
    double compiler_overhead;
    double instr_overhead;
};

}  // namespace

int main() {
    bench::print_header("Figure 5 — SPEC CPU2006 runtime overhead of P-SSP",
                        "Fig. 5 (compiler 0.24% avg, instrumentation 1.01% avg)");

    std::vector<row> rows;
    std::vector<double> comp_all;
    std::vector<double> instr_all;

    for (const auto& profile : workload::spec2006_profiles()) {
        const auto mod = workload::make_spec_module(profile);

        harness_options native_opt;
        const auto native = measure_module(mod, scheme_kind::none, native_opt);

        harness_options comp_opt;
        const auto compiled = measure_module(mod, scheme_kind::p_ssp, comp_opt);

        harness_options instr_opt;
        instr_opt.dep = deployment::instrumented_dynamic;
        const auto instrumented =
            measure_module(mod, scheme_kind::p_ssp32, instr_opt);

        if (!native.completed || !compiled.completed || !instrumented.completed) {
            std::printf("!! %s failed to complete; skipping\n", profile.name.c_str());
            continue;
        }
        // Same work performed regardless of scheme (checksum must agree).
        if (native.exit_code != compiled.exit_code ||
            native.exit_code != instrumented.exit_code) {
            std::printf("!! %s checksum mismatch across builds\n", profile.name.c_str());
            continue;
        }

        row r{profile.name,
              util::overhead_percent(static_cast<double>(native.cycles),
                                     static_cast<double>(compiled.cycles)),
              util::overhead_percent(static_cast<double>(native.cycles),
                                     static_cast<double>(instrumented.cycles))};
        comp_all.push_back(r.compiler_overhead);
        instr_all.push_back(r.instr_overhead);
        rows.push_back(r);
    }

    util::text_table table{{"benchmark", "compiler P-SSP", "instrumented P-SSP"}};
    for (const auto& r : rows)
        table.add_row({r.name, util::fmt_percent(r.compiler_overhead),
                       util::fmt_percent(r.instr_overhead)});
    table.add_row({"AVERAGE", util::fmt_percent(util::mean(comp_all)),
                   util::fmt_percent(util::mean(instr_all))});
    std::printf("%s\n", table.render("Runtime overhead vs native (modeled cycles)").c_str());

    util::bar_chart chart{"% overhead (instrumented)"};
    for (const auto& r : rows) chart.add(r.name, r.instr_overhead);
    std::printf("%s\n", chart.render("Figure 5 (instrumentation-based bars)").c_str());

    std::printf("paper:    compiler 0.24%% avg, instrumentation 1.01%% avg\n");
    std::printf("measured: compiler %s avg, instrumentation %s avg\n",
                util::fmt_percent(util::mean(comp_all)).c_str(),
                util::fmt_percent(util::mean(instr_all)).c_str());
    return 0;
}
