// Static-verification driver: runs the canary-protocol prover over the
// scheme × workload × link-mode matrix and gates CI on three properties:
//
//   1. protocol  — every cell proves clean (no violations), and every
//                  function's proven profile (protected set, slot byte
//                  ranges, canary-source mask) matches what the scheme's
//                  own frame plan predicts (compiler::plan_for_function,
//                  analysis::expected_sources);
//   2. rewriter  — for the SSP cells, upgrade_to_pssp() is audited pre/
//                  post: proofs clean both sides, skipped-function
//                  accounting exact, prologue/epilogue patches paired,
//                  layout bit-identical (analysis::audit_rewrite);
//   3. mutation  — seeded single-op corruptions of every install/check
//                  sequence must each be caught (run_mutation_self_test):
//                  0 false negatives on mutants, 0 findings on the clean
//                  builds.
//
// Exit 0 only if every selected cell passes everything.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "analysis/canary_proof.hpp"
#include "analysis/mutate.hpp"
#include "compiler/codegen.hpp"
#include "core/scheme.hpp"
#include "rewriter/rewriter.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace pssp;

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--scheme S|all] [--workload W|all]\n"
                 "          [--mode dynamic|static|all] [--no-mutation]\n"
                 "          [--json PATH|-] [--list] [-v]\n"
                 "  --scheme S     one scheme (e.g. ssp, p_ssp) or 'all'\n"
                 "  --workload W   one catalog workload or 'all'\n"
                 "  --mode M       link mode(s) to build (default all)\n"
                 "  --no-mutation  skip the mutation self-test stage\n"
                 "  --json PATH    write the matrix as deterministic JSON\n"
                 "  --list         print schemes and workloads, then exit\n"
                 "  -v             per-function detail on failures\n",
                 argv0);
}

struct cell_result {
    std::string scheme, workload, mode;
    int functions_analyzed = 0;
    int functions_protected = 0;
    int violations = 0;
    int profile_mismatches = 0;
    int audit_issues = -1;     // -1 = audit not applicable to this cell
    int mutation_sites = -1;   // -1 = mutation stage not run on this cell
    int mutation_missed = 0;
    bool pass = false;
    std::vector<std::string> messages;
};

// Byte-coverage union of half-open [offset, offset+bytes) ranges, so the
// analyzer's slot granularity (OWF records nonce and ciphertext apart)
// compares against the plan's (one 24-byte area) without aliasing.
[[nodiscard]] std::set<std::int32_t> covered_bytes(
    const std::vector<analysis::slot_record>& slots) {
    std::set<std::int32_t> bytes;
    for (const auto& s : slots)
        for (std::int32_t b = 0; b < s.bytes; ++b) bytes.insert(s.offset + b);
    return bytes;
}

[[nodiscard]] std::set<std::int32_t> planned_bytes(const core::frame_plan& plan) {
    std::set<std::int32_t> bytes;
    for (const auto& c : plan.canaries)
        for (std::int32_t b = 0; b < c.bytes; ++b) bytes.insert(c.offset + b);
    return bytes;
}

cell_result run_cell(core::scheme_kind kind, const std::string& workload_name,
                     binfmt::link_mode mode, bool with_mutation) {
    cell_result cell;
    cell.scheme = core::to_string(kind);
    cell.workload = workload_name;
    cell.mode = mode == binfmt::link_mode::dynamic_glibc ? "dynamic" : "static";

    const auto mod = workload::make_catalog_module(workload_name);
    const auto sch =
        std::shared_ptr<const core::scheme>(core::make_scheme(kind));
    const auto binary = compiler::build_module(mod, sch, mode);
    const auto proof = analysis::prove_canary_protocol(binary);

    // ---- Stage 1: protocol + profile-vs-plan cross-check -----------------
    for (const auto& fn : mod.functions) {
        const auto* proven = proof.find(fn.name);
        if (proven == nullptr || !proven->analyzed) {
            ++cell.profile_mismatches;
            cell.messages.push_back(fn.name + ": module function not analyzed");
            continue;
        }
        ++cell.functions_analyzed;
        cell.violations += static_cast<int>(proven->violations.size());
        for (const auto& v : proven->violations)
            cell.messages.push_back(v.function + " @op " +
                                    std::to_string(v.op_index) + ": " + v.message);

        const auto plan = compiler::plan_for_function(fn, *sch);
        if (plan.protected_frame != proven->is_protected) {
            ++cell.profile_mismatches;
            cell.messages.push_back(
                fn.name + ": plan says protected=" +
                std::to_string(plan.protected_frame) + ", proof says " +
                std::to_string(proven->is_protected));
            continue;
        }
        if (!proven->is_protected) continue;
        ++cell.functions_protected;
        if (covered_bytes(proven->slots) != planned_bytes(plan)) {
            ++cell.profile_mismatches;
            cell.messages.push_back(fn.name +
                                    ": proven canary slots do not cover the "
                                    "planned canary byte ranges");
        }
        const auto expected =
            analysis::expected_sources(kind, plan.canaries.size());
        if (proven->sources != expected) {
            ++cell.profile_mismatches;
            cell.messages.push_back(
                fn.name + ": canary sources " +
                analysis::source_names(proven->sources) + ", expected " +
                analysis::source_names(expected));
        }
    }

    // ---- Stage 2: rewriter audit (SSP cells feed the rewriter) -----------
    if (kind == core::scheme_kind::ssp) {
        const auto audit = analysis::audit_rewrite(binary);
        cell.audit_issues = static_cast<int>(audit.issues.size());
        for (const auto& issue : audit.issues)
            cell.messages.push_back("audit: " + issue.function + ": " +
                                    issue.message);
    }

    // ---- Stage 3: mutation self-test --------------------------------------
    if (with_mutation && kind != core::scheme_kind::none) {
        auto mutation_input = binary;
        if (kind == core::scheme_kind::ssp)
            // Mutate the *upgraded* image for SSP: the rewritten epilogue
            // (checking-call shape) is the harder catch.
            rewriter::binary_rewriter{}.upgrade_to_pssp(mutation_input);
        const auto mutation = analysis::run_mutation_self_test(mutation_input);
        cell.mutation_sites = static_cast<int>(mutation.outcomes.size());
        cell.mutation_missed = mutation.missed();
        if (mutation.clean_violations != 0)
            cell.messages.push_back(
                "mutation: clean build reported " +
                std::to_string(mutation.clean_violations) + " violations");
        for (const auto& o : mutation.outcomes)
            if (!o.caught)
                cell.messages.push_back(
                    "mutation MISSED: " + analysis::to_string(o.site.kind) + " " +
                    o.site.function + "@" + std::to_string(o.site.insn_index) +
                    ": " + o.how);
        if (mutation.clean_violations != 0) ++cell.mutation_missed;
    }

    cell.pass = cell.violations == 0 && cell.profile_mismatches == 0 &&
                cell.audit_issues <= 0 && cell.mutation_missed == 0;
    return cell;
}

void write_json(const std::vector<cell_result>& cells, std::FILE* out) {
    std::fprintf(out, "{\n  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& c = cells[i];
        std::fprintf(out,
                     "    {\"scheme\": \"%s\", \"workload\": \"%s\", "
                     "\"mode\": \"%s\", \"analyzed\": %d, \"protected\": %d, "
                     "\"violations\": %d, \"profile_mismatches\": %d, "
                     "\"audit_issues\": %d, \"mutation_sites\": %d, "
                     "\"mutation_missed\": %d, \"pass\": %s}%s\n",
                     c.scheme.c_str(), c.workload.c_str(), c.mode.c_str(),
                     c.functions_analyzed, c.functions_protected, c.violations,
                     c.profile_mismatches, c.audit_issues, c.mutation_sites,
                     c.mutation_missed, c.pass ? "true" : "false",
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
    std::string scheme_arg = "all";
    std::string workload_arg = "all";
    std::string mode_arg = "all";
    std::string json_path;
    bool with_mutation = true;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scheme") {
            scheme_arg = next();
        } else if (arg == "--workload") {
            workload_arg = next();
        } else if (arg == "--mode") {
            mode_arg = next();
        } else if (arg == "--json") {
            json_path = next();
        } else if (arg == "--no-mutation") {
            with_mutation = false;
        } else if (arg == "-v") {
            verbose = true;
        } else if (arg == "--list") {
            std::printf("schemes:\n");
            for (const auto kind : core::all_scheme_kinds())
                std::printf("  %s\n", core::to_string(kind).c_str());
            std::printf("workloads:\n");
            for (const auto& entry : workload::workload_catalog())
                std::printf("  %-10s %s\n", entry.name.c_str(),
                            entry.description.c_str());
            return 0;
        } else {
            usage(argv[0]);
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    std::vector<core::scheme_kind> kinds;
    if (scheme_arg == "all") {
        kinds = core::all_scheme_kinds();
    } else {
        try {
            kinds.push_back(core::scheme_kind_from_string(scheme_arg));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    std::vector<std::string> workloads;
    if (workload_arg == "all") {
        for (const auto& entry : workload::workload_catalog())
            workloads.push_back(entry.name);
    } else {
        workloads.push_back(workload_arg);
    }

    std::vector<binfmt::link_mode> modes;
    if (mode_arg == "all" || mode_arg == "dynamic")
        modes.push_back(binfmt::link_mode::dynamic_glibc);
    if (mode_arg == "all" || mode_arg == "static")
        modes.push_back(binfmt::link_mode::static_glibc);
    if (modes.empty()) {
        usage(argv[0]);
        return 2;
    }

    std::vector<cell_result> cells;
    int failures = 0;
    for (const auto kind : kinds) {
        for (const auto& workload_name : workloads) {
            for (const auto mode : modes) {
                cell_result cell;
                try {
                    // Run the mutation stage once per scheme×workload — it
                    // re-proves every mutant; the dynamic and static images
                    // share all instrumentation shapes except the epilogue
                    // call target, which the SSP audit covers in both modes.
                    const bool mutate_here =
                        with_mutation && mode == modes.front();
                    cell = run_cell(kind, workload_name, mode, mutate_here);
                } catch (const std::exception& e) {
                    cell.scheme = core::to_string(kind);
                    cell.workload = workload_name;
                    cell.mode = mode == binfmt::link_mode::dynamic_glibc
                                    ? "dynamic"
                                    : "static";
                    cell.messages.push_back(std::string{"exception: "} + e.what());
                }
                if (!cell.pass) ++failures;
                std::printf(
                    "%-12s %-9s %-8s analyzed=%-2d protected=%-2d "
                    "violations=%-2d mismatches=%-2d audit=%-3d "
                    "mutants=%d/%d  %s\n",
                    cell.scheme.c_str(), cell.workload.c_str(), cell.mode.c_str(),
                    cell.functions_analyzed, cell.functions_protected,
                    cell.violations, cell.profile_mismatches, cell.audit_issues,
                    cell.mutation_sites < 0
                        ? 0
                        : cell.mutation_sites - cell.mutation_missed,
                    cell.mutation_sites < 0 ? 0 : cell.mutation_sites,
                    cell.pass ? "PASS" : "FAIL");
                if (!cell.pass || verbose)
                    for (const auto& m : cell.messages)
                        std::printf("    %s\n", m.c_str());
                cells.push_back(std::move(cell));
            }
        }
    }

    if (!json_path.empty()) {
        if (json_path == "-") {
            write_json(cells, stdout);
        } else {
            std::FILE* f = std::fopen(json_path.c_str(), "w");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
                return 2;
            }
            write_json(cells, f);
            std::fclose(f);
        }
    }

    std::printf("%zu cells, %d failing\n", cells.size(), failures);
    return failures == 0 ? 0 : 1;
}
