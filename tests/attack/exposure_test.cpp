// Leak-and-replay (Section IV-C) and entropy-reduced brute force
// (Section III-C-1) as regression tests: the full exposure matrix the
// paper's extension 3 is motivated by.

#include <gtest/gtest.h>

#include "attack/brute_force.hpp"
#include "attack/leak_replay.hpp"
#include "compiler/codegen.hpp"
#include "core/canary.hpp"
#include "core/tls_layout.hpp"
#include "proc/fork_server.hpp"
#include "util/bytes.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using core::scheme_kind;

struct oracle {
    binfmt::linked_binary binary;
    proc::fork_server server;

    explicit oracle(scheme_kind kind, std::uint64_t seed = 123)
        : binary{compiler::build_module(
              workload::make_server_module(workload::nginx_profile()),
              core::make_scheme(kind))},
          server{binary, core::make_scheme(kind), seed,
                 workload::server_config_for(workload::nginx_profile())} {}
};

bool replay_hijacks(scheme_kind kind, unsigned canary_bytes) {
    oracle o{kind};
    attack::leak_replay_config cfg;
    cfg.prefix_bytes = 64;
    cfg.canary_bytes = canary_bytes;
    cfg.leak_offset = 64;
    attack::leak_replay atk{o.server, cfg};
    const auto r = atk.run(o.binary.symbols.at("win"), o.binary.data_base);
    EXPECT_TRUE(r.leak_succeeded) << core::to_string(kind);
    return r.hijacked;
}

// The paper's Section IV-C matrix: exposure breaks SSP *and* basic P-SSP
// (the "common drawback"); only the frame-binding variants resist.
TEST(leak_replay, ssp_falls_to_a_single_leak) {
    EXPECT_TRUE(replay_hijacks(scheme_kind::ssp, 8));
}

TEST(leak_replay, p_ssp_shares_the_single_point_of_failure) {
    EXPECT_TRUE(replay_hijacks(scheme_kind::p_ssp, 16));
}

TEST(leak_replay, p_ssp_nt_shares_it_too) {
    EXPECT_TRUE(replay_hijacks(scheme_kind::p_ssp_nt, 16));
}

TEST(leak_replay, p_ssp_gb_resists_replay) {
    EXPECT_FALSE(replay_hijacks(scheme_kind::p_ssp_gb, 8));
}

TEST(leak_replay, p_ssp_owf_resists_replay) {
    EXPECT_FALSE(replay_hijacks(scheme_kind::p_ssp_owf, 24));
}

TEST(leak_replay, owf_sha1_instantiation_also_resists) {
    core::scheme_options options;
    options.owf = crypto::owf_kind::sha1;
    const auto profile = workload::nginx_profile();
    auto binary =
        compiler::build_module(workload::make_server_module(profile),
                               core::make_scheme(scheme_kind::p_ssp_owf, options));
    proc::fork_server server{binary,
                             core::make_scheme(scheme_kind::p_ssp_owf, options), 9,
                             workload::server_config_for(profile)};
    attack::leak_replay_config cfg;
    cfg.prefix_bytes = 64;
    cfg.canary_bytes = 24;
    cfg.leak_offset = 64;
    attack::leak_replay atk{server, cfg};
    EXPECT_FALSE(atk.run(binary.symbols.at("win"), binary.data_base).hijacked);
}

// ---- entropy-reduced brute force ----

TEST(brute_force, small_entropy_falls_within_expected_budget) {
    oracle o{scheme_kind::ssp, 777};
    attack::brute_force_config cfg;
    cfg.prefix_bytes = 64;
    cfg.unknown_bits = 8;
    cfg.true_canary_hint = core::tls_load(o.server.master(), core::tls_canary);
    cfg.max_trials = 1 << 12;  // 16x the mean; virtually certain to land
    attack::brute_force atk{o.server, scheme_kind::ssp, cfg};
    const auto r = atk.run(o.binary.symbols.at("win"), o.binary.data_base);
    EXPECT_TRUE(r.hijacked);
    EXPECT_LE(r.trials, cfg.max_trials);
}

TEST(brute_force, p_ssp_costs_the_same_as_ssp_for_exhaustive_search) {
    // Section III-C-1: "P-SSP has the same security strength as SSP in
    // terms of exhaustive search." With 8 unknown bits both should fall in
    // the same trial band (mean 128).
    auto run_for = [](scheme_kind kind) {
        oracle o{kind, 888};
        attack::brute_force_config cfg;
        cfg.prefix_bytes = 64;
        cfg.unknown_bits = 8;
        cfg.true_canary_hint = core::tls_load(o.server.master(), core::tls_canary);
        cfg.max_trials = 1 << 12;
        attack::brute_force atk{o.server, kind, cfg};
        return atk.run(o.binary.symbols.at("win"), o.binary.data_base);
    };
    const auto ssp = run_for(scheme_kind::ssp);
    const auto pssp = run_for(scheme_kind::p_ssp);
    EXPECT_TRUE(ssp.hijacked);
    EXPECT_TRUE(pssp.hijacked);
    // Both are geometric with mean 256: equal strength, not equal luck —
    // just require the same order of magnitude.
    EXPECT_LT(ssp.trials, 4096u);
    EXPECT_LT(pssp.trials, 4096u);
}

TEST(brute_force, wrong_guesses_never_hijack) {
    oracle o{scheme_kind::ssp, 999};
    attack::brute_force_config cfg;
    cfg.prefix_bytes = 64;
    cfg.unknown_bits = 16;
    // Hint deliberately WRONG in the known bits: no guess can ever match.
    cfg.true_canary_hint =
        core::tls_load(o.server.master(), core::tls_canary) ^ (1ull << 40);
    cfg.max_trials = 500;
    attack::brute_force atk{o.server, scheme_kind::ssp, cfg};
    EXPECT_FALSE(atk.run(o.binary.symbols.at("win"), o.binary.data_base).hijacked);
}

TEST(craft_canary_bytes, pair_schemes_emit_consistent_splits) {
    crypto::xoshiro256 rng{1};
    const std::uint64_t guess = 0x1234567890abcdefull;
    const auto bytes =
        attack::craft_canary_bytes(scheme_kind::p_ssp, guess, rng);
    ASSERT_EQ(bytes.size(), 16u);
    const auto c1 = util::load_le64(std::span{bytes}.subspan(0, 8));
    const auto c0 = util::load_le64(std::span{bytes}.subspan(8, 8));
    EXPECT_EQ(c0 ^ c1, guess);
}

TEST(craft_canary_bytes, packed32_scheme_emits_one_word) {
    crypto::xoshiro256 rng{2};
    const auto bytes =
        attack::craft_canary_bytes(scheme_kind::p_ssp32, 0xa1b2c3d4ull, rng);
    ASSERT_EQ(bytes.size(), 8u);
    const auto pair = core::unpack32(util::load_le64(bytes));
    EXPECT_EQ(pair.combined(), 0xa1b2c3d4u);
}

TEST(craft_canary_bytes, owf_has_no_crafting_model) {
    crypto::xoshiro256 rng{3};
    EXPECT_THROW(
        (void)attack::craft_canary_bytes(scheme_kind::p_ssp_owf, 1, rng),
        std::invalid_argument);
}

}  // namespace
}  // namespace pssp
