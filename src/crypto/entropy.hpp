// Hardware entropy source analog.
//
// The paper's P-SSP-NT prologue executes `rdrand` (Code 7), which on real
// Intel/AMD parts draws from an on-chip conditioned entropy source. Our VM
// models the instruction; this class models the source behind it. It is a
// deterministic xoshiro stream by default so experiments replay exactly,
// but behaves like the real thing from the consumer's perspective: every
// read yields fresh, unpredictable-to-the-program bits, and reads can be
// made to fail transiently (real rdrand clears CF on underflow, and callers
// are expected to retry).
#pragma once

#include <cstdint>

#include "crypto/prng.hpp"

namespace pssp::crypto {

class entropy_source {
  public:
    explicit entropy_source(std::uint64_t seed) noexcept : prng_{seed} {}

    // Models RDRAND: returns true and sets `out` on success. When a failure
    // rate is configured, returns false (carry flag clear) with that
    // probability, leaving `out` untouched — exercising retry loops.
    [[nodiscard]] bool rdrand64(std::uint64_t& out) noexcept;

    // Convenience wrapper that retries until success (the glibc pattern).
    [[nodiscard]] std::uint64_t next64() noexcept;

    // Configures transient failures: one in `one_in` reads fails.
    // 0 disables failures (the default).
    void set_failure_rate(std::uint64_t one_in) noexcept { fail_one_in_ = one_in; }

    // Number of successful 64-bit reads so far (for tests and cost audits).
    [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }

  private:
    xoshiro256 prng_;
    std::uint64_t fail_one_in_ = 0;
    std::uint64_t reads_ = 0;
};

}  // namespace pssp::crypto
