#include "util/json.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pssp::util {

// ---------------------------------------------------------------------------
// Emit
// ---------------------------------------------------------------------------

void append_number(std::string& out, double value) {
    // Shortest-round-trip formatting would vary in width; a fixed "%.9g"
    // keeps the JSON byte-stable across runs while losing nothing a rate
    // needs.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    out += buf;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

namespace {

void append_key(std::string& out, const char* key) {
    out += '"';
    out += key;
    out += "\":";
}

void append_hexdouble(std::string& out, double value) {
    // C99 hexfloat: every bit of the significand survives the text trip,
    // and strtod parses it back exactly.
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", value);
    out += '"';
    out += buf;
    out += '"';
}

}  // namespace

void append_kv(std::string& out, const char* key, double value, bool comma) {
    append_key(out, key);
    append_number(out, value);
    if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, std::uint64_t value, bool comma) {
    append_key(out, key);
    out += std::to_string(value);
    if (comma) out += ',';
}

void append_kv(std::string& out, const char* key, const std::string& value,
               bool comma) {
    append_key(out, key);
    out += '"';
    out += value;  // names are identifier-like; no escaping needed
    out += '"';
    if (comma) out += ',';
}

void append_kv_bool(std::string& out, const char* key, bool value, bool comma) {
    append_key(out, key);
    out += value ? "true" : "false";
    if (comma) out += ',';
}

void append_kv_exact(std::string& out, const char* key, double value, bool comma) {
    append_key(out, key);
    append_hexdouble(out, value);
    if (comma) out += ',';
}

void append_interval(std::string& out, const char* key, const interval& iv,
                     bool comma) {
    append_key(out, key);
    out += '[';
    append_number(out, iv.lo);
    out += ',';
    append_number(out, iv.hi);
    out += ']';
    if (comma) out += ',';
}

void append_accumulator(std::string& out, const char* key,
                        const welford_accumulator& acc, bool comma) {
    append_key(out, key);
    out += '{';
    append_kv(out, "count", static_cast<std::uint64_t>(acc.count()));
    append_kv(out, "mean", acc.mean());
    append_kv(out, "stddev", acc.stddev());
    append_kv(out, "min", acc.count() ? acc.min() : 0.0);
    append_kv(out, "max", acc.count() ? acc.max() : 0.0, /*comma=*/false);
    out += '}';
    if (comma) out += ',';
}

void append_accumulator_exact(std::string& out, const char* key,
                              const welford_accumulator& acc, bool comma) {
    const auto s = acc.save();
    append_key(out, key);
    out += '{';
    append_kv(out, "n", s.n);
    append_kv_exact(out, "mean", s.mean);
    append_kv_exact(out, "m2", s.m2);
    append_kv_exact(out, "min", s.min);
    append_kv_exact(out, "max", s.max);
    append_kv_exact(out, "total", s.total, /*comma=*/false);
    out += '}';
    if (comma) out += ',';
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

const json_value& json_value::at(std::string_view key) const {
    if (const auto* v = find(key)) return *v;
    throw std::runtime_error{"json: missing key \"" + std::string{key} + "\""};
}

const json_value* json_value::find(std::string_view key) const noexcept {
    if (kind_ != kind::object) return nullptr;
    for (const auto& [k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

const std::vector<std::pair<std::string, json_value>>& json_value::members() const {
    if (kind_ != kind::object) throw std::runtime_error{"json: not an object"};
    return members_;
}

const std::vector<json_value>& json_value::elements() const {
    if (kind_ != kind::array) throw std::runtime_error{"json: not an array"};
    return elements_;
}

const std::string& json_value::as_string() const {
    if (kind_ != kind::string) throw std::runtime_error{"json: not a string"};
    return scalar_;
}

bool json_value::as_bool() const {
    if (kind_ != kind::boolean) throw std::runtime_error{"json: not a boolean"};
    return bool_;
}

std::uint64_t json_value::as_u64() const {
    if (kind_ != kind::number)
        throw std::runtime_error{"json: not a number: " + scalar_};
    // strtoull accepts a leading '-' and wraps; a negative count must be a
    // parse error, not ~1.8e19.
    if (!scalar_.empty() && scalar_[0] == '-')
        throw std::runtime_error{"json: not a u64: " + scalar_};
    errno = 0;
    char* end = nullptr;
    const auto v = std::strtoull(scalar_.c_str(), &end, 10);
    if (errno != 0 || end != scalar_.c_str() + scalar_.size())
        throw std::runtime_error{"json: not a u64: " + scalar_};
    return v;
}

double json_value::as_double() const {
    if (kind_ != kind::number)
        throw std::runtime_error{"json: not a number: " + scalar_};
    char* end = nullptr;
    const double v = std::strtod(scalar_.c_str(), &end);
    if (end != scalar_.c_str() + scalar_.size())
        throw std::runtime_error{"json: not a double: " + scalar_};
    return v;
}

double json_value::as_double_exact() const {
    if (kind_ == kind::number) return as_double();
    if (kind_ != kind::string)
        throw std::runtime_error{"json: not an exact double"};
    char* end = nullptr;
    const double v = std::strtod(scalar_.c_str(), &end);  // handles hexfloat
    if (end != scalar_.c_str() + scalar_.size())
        throw std::runtime_error{"json: not a hexfloat: " + scalar_};
    return v;
}

// At namespace scope (not anonymous) so the friend declaration in
// json.hpp matches.
class json_parser {
  public:
    explicit json_parser(std::string_view text) : text_{text} {}

    json_value parse_document() {
        auto v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void fail(const char* what) const {
        throw std::runtime_error{"json parse error at byte " +
                                 std::to_string(pos_) + ": " + what};
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail("unexpected character");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    std::string parse_string_body() {
        expect('"');
        std::string s;
        for (;;) {
            const char c = peek();
            ++pos_;
            if (c == '"') return s;
            if (c == '\\') {
                const char esc = peek();
                ++pos_;
                switch (esc) {
                    case '"': s += '"'; break;
                    case '\\': s += '\\'; break;
                    case '/': s += '/'; break;
                    case 'n': s += '\n'; break;
                    case 't': s += '\t'; break;
                    case 'r': s += '\r'; break;
                    default: fail("unsupported escape");
                }
            } else {
                s += c;
            }
        }
    }

    json_value parse_value() {
        skip_ws();
        const char c = peek();
        json_value v;
        switch (c) {
            case '{': {
                v.kind_ = json_value::kind::object;
                ++pos_;
                skip_ws();
                if (peek() == '}') {
                    ++pos_;
                    return v;
                }
                for (;;) {
                    skip_ws();
                    std::string key = parse_string_body();
                    skip_ws();
                    expect(':');
                    v.members_.emplace_back(std::move(key), parse_value());
                    skip_ws();
                    if (peek() == ',') {
                        ++pos_;
                        continue;
                    }
                    expect('}');
                    return v;
                }
            }
            case '[': {
                v.kind_ = json_value::kind::array;
                ++pos_;
                skip_ws();
                if (peek() == ']') {
                    ++pos_;
                    return v;
                }
                for (;;) {
                    v.elements_.push_back(parse_value());
                    skip_ws();
                    if (peek() == ',') {
                        ++pos_;
                        continue;
                    }
                    expect(']');
                    return v;
                }
            }
            case '"':
                v.kind_ = json_value::kind::string;
                v.scalar_ = parse_string_body();
                return v;
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                v.kind_ = json_value::kind::boolean;
                v.bool_ = true;
                return v;
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                v.kind_ = json_value::kind::boolean;
                v.bool_ = false;
                return v;
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                v.kind_ = json_value::kind::null;
                return v;
            default: {
                if (c != '-' && !std::isdigit(static_cast<unsigned char>(c)))
                    fail("unexpected character");
                // Validate the full JSON number grammar here, not lazily in
                // the scalar accessors: a malformed token in a field nobody
                // reads (e.g. a corrupt worker partial) must fail the parse,
                // not survive it.
                const std::size_t start = pos_;
                if (peek() == '-') ++pos_;
                if (!std::isdigit(static_cast<unsigned char>(peek())))
                    fail("bad number");
                if (text_[pos_] == '0') {
                    ++pos_;  // a leading zero stands alone: 0, 0.5 — not 01
                } else {
                    while (pos_ < text_.size() &&
                           std::isdigit(static_cast<unsigned char>(text_[pos_])))
                        ++pos_;
                }
                if (pos_ < text_.size() && text_[pos_] == '.') {
                    ++pos_;
                    if (!std::isdigit(static_cast<unsigned char>(peek())))
                        fail("bad number");
                    while (pos_ < text_.size() &&
                           std::isdigit(static_cast<unsigned char>(text_[pos_])))
                        ++pos_;
                }
                if (pos_ < text_.size() &&
                    (text_[pos_] == 'e' || text_[pos_] == 'E')) {
                    ++pos_;
                    if (pos_ < text_.size() &&
                        (text_[pos_] == '+' || text_[pos_] == '-'))
                        ++pos_;
                    if (!std::isdigit(static_cast<unsigned char>(peek())))
                        fail("bad number");
                    while (pos_ < text_.size() &&
                           std::isdigit(static_cast<unsigned char>(text_[pos_])))
                        ++pos_;
                }
                v.kind_ = json_value::kind::number;
                v.scalar_ = std::string{text_.substr(start, pos_ - start)};
                return v;
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

json_value parse_json(std::string_view text) {
    return json_parser{text}.parse_document();
}

}  // namespace pssp::util
