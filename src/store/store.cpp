#include "store/store.hpp"

#include <cerrno>
#include <stdexcept>

#include <sys/stat.h>
#include <unistd.h>

#include "store/reader.hpp"
#include "util/bytes.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace pssp::store {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error{"store: " + what};
}

}  // namespace

store_writer store_writer::open(const std::string& dir,
                                const campaign::campaign_spec& spec,
                                bool resume, const writer_options& options) {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        fail("cannot create directory " + dir);

    // The manifest's spec is the digest's canonical form: execution knobs
    // (jobs, reuse_masters) never reach the store, so the same campaign
    // writes the same manifest whatever machine shape ran it.
    campaign::campaign_spec canonical = spec;
    canonical.jobs = 1;
    canonical.reuse_masters = true;
    const auto digest = dist::spec_digest(spec);

    store_writer w;
    w.dir_ = dir;
    w.options_ = options;

    std::string existing;
    if (util::read_file(dir + "/store.json", existing)) {
        if (!resume)
            fail("refusing to overwrite existing result store in " + dir +
                 " (pass --resume to continue it, or delete it first)");
        auto data = load_store(dir);  // verifies + repairs segments
        if (data.meta.spec_digest != digest)
            fail(dir + ": spec digest mismatch (store " +
                 std::to_string(data.meta.spec_digest) + ", this run " +
                 std::to_string(digest) +
                 ") — this store belongs to a different campaign");
        if (data.complete)
            fail(dir + " is already complete — refusing to ingest into a "
                       "finished campaign");
        w.manifest_ = std::move(data.meta);
        w.next_seq_ = data.next_seq;
        for (const auto& r : data.blocks) {
            w.seen_blocks_.insert(r.block.index);
            if (r.seq > w.manifest_.compacted_seq) w.pending_blocks_.push_back(r);
        }
        for (const auto& r : data.rounds) {
            w.seen_rounds_.insert(r.summary.round);
            w.round_entries_ += 1;
            if (r.seq > w.manifest_.compacted_seq) w.pending_rounds_.push_back(r);
        }
        w.log_fd_ = util::open_append(dir + "/ingest.log", /*truncate=*/false);
        return w;
    }

    w.manifest_.spec_digest = digest;
    w.manifest_.spec = std::move(canonical);
    w.write_manifest();
    // A stale ingest.log with no store.json is debris, not progress.
    w.log_fd_ = util::open_append(dir + "/ingest.log", /*truncate=*/true);
    return w;
}

store_writer::store_writer(store_writer&& other) noexcept
    : dir_{std::move(other.dir_)},
      manifest_{std::move(other.manifest_)},
      log_fd_{other.log_fd_},
      next_seq_{other.next_seq_},
      options_{other.options_},
      seen_blocks_{std::move(other.seen_blocks_)},
      seen_rounds_{std::move(other.seen_rounds_)},
      pending_blocks_{std::move(other.pending_blocks_)},
      pending_rounds_{std::move(other.pending_rounds_)},
      rounds_since_compact_{other.rounds_since_compact_},
      round_entries_{other.round_entries_},
      ingested_blocks_{other.ingested_blocks_},
      skipped_blocks_{other.skipped_blocks_},
      segments_written_{other.segments_written_} {
    other.log_fd_ = -1;
}

store_writer::~store_writer() {
    if (log_fd_ >= 0) ::close(log_fd_);
}

void store_writer::append_entry(const log_entry& entry) {
    const auto line = encode_log_line(entry);
    const std::string log_path = dir_ + "/ingest.log";
    util::write_all(log_fd_, line, log_path);
    if (::fsync(log_fd_) != 0) fail("fsync failed on " + log_path);
}

void store_writer::ingest_blocks(std::uint64_t round,
                                 std::span<const dist::partial_block> blocks) {
    std::vector<dist::partial_block> fresh;
    fresh.reserve(blocks.size());
    for (const auto& b : blocks) {
        if (seen_blocks_.contains(b.index)) {
            skipped_blocks_ += 1;
            continue;
        }
        fresh.push_back(b);
    }
    if (fresh.empty()) return;

    const std::uint64_t seq = next_seq_;
    append_entry(log_entry::make_blocks(seq, round, fresh));
    next_seq_ += 1;
    for (auto& b : fresh) {
        seen_blocks_.insert(b.index);
        ingested_blocks_ += 1;
        pending_blocks_.push_back(block_row{seq, round, std::move(b)});
    }
}

void store_writer::ingest_round(const obs::round_summary& summary) {
    if (seen_rounds_.contains(summary.round)) return;

    const std::uint64_t seq = next_seq_;
    append_entry(log_entry::make_round(seq, summary));
    next_seq_ += 1;
    seen_rounds_.insert(summary.round);
    round_entries_ += 1;

    // Keep the *log-decoded* summary, not the live one: its doubles have
    // round-tripped through round_summary_json's fixed formatting, so a
    // later rebuild-from-log re-encodes the segment bit-identically.
    round_row row;
    row.seq = seq;
    row.summary = round_summary_from_json(
        util::parse_json(obs::round_summary_json(summary)));
    pending_rounds_.push_back(std::move(row));

    rounds_since_compact_ += 1;
    if (options_.compact_every_rounds != 0 &&
        rounds_since_compact_ >= options_.compact_every_rounds)
        compact();
}

void store_writer::compact() {
    rounds_since_compact_ = 0;
    if (pending_blocks_.empty() && pending_rounds_.empty()) return;

    segment_info info;
    info.first_seq = manifest_.compacted_seq + 1;
    info.last_seq = next_seq_ - 1;
    info.file = segment_file_name(info.first_seq);
    info.block_rows = pending_blocks_.size();
    info.round_rows = pending_rounds_.size();

    const auto bytes = encode_segment(pending_blocks_, pending_rounds_);
    info.fnv = util::fnv1a64(bytes);
    // Segment first, manifest second: a crash in between leaves a segment
    // the manifest does not reference yet — the rows still come from the
    // log, and the next compaction rewrites the same file name.
    util::write_file_atomic(dir_, info.file, bytes);
    manifest_.compacted_seq = info.last_seq;
    manifest_.segments.push_back(std::move(info));
    write_manifest();

    pending_blocks_.clear();
    pending_rounds_.clear();
    segments_written_ += 1;
}

void store_writer::finalize(const campaign::campaign_report& report,
                            const std::string& metrics_json) {
    compact();
    // Metrics and completion live past the compaction frontier forever:
    // compaction only ever covers block/round rows, so a log scan always
    // finds these two entries in the tail.
    if (!metrics_json.empty()) {
        append_entry(log_entry::make_metrics(next_seq_, metrics_json));
        next_seq_ += 1;
    }
    append_entry(log_entry::make_complete(next_seq_, round_entries_,
                                          util::fnv1a64(report.to_json())));
    next_seq_ += 1;
    manifest_.complete = true;
    write_manifest();
}

void store_writer::write_manifest() const {
    util::write_file_atomic(dir_, "store.json", encode_manifest(manifest_));
}

}  // namespace pssp::store
