// Dashboard export: one self-contained HTML file over a loaded store.
//
// Everything is computed here, from the same integer tallies the query
// engine aggregates — the embedded JSON payload carries finished numbers
// (rates, Wilson bounds, per-round half-widths), and the inline script
// only draws. No network, no external assets: the file works from a CI
// artifact tab or a mailbox attachment.
//
// Views: a status header (trials, completion, repairs), the per-cell
// detection-rate table, the convergence chart (per-cell CI half-width by
// round, widest-final-first, at most 8 series with the rest folded and
// counted), and the recovery/fault timeline built from the stored round
// summaries (retries / requeued blocks / timeouts / resumed rounds).
#pragma once

#include <string>

#include "store/reader.hpp"

namespace pssp::store {

[[nodiscard]] std::string render_dashboard(const store_data& data);

}  // namespace pssp::store
