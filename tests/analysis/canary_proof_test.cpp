// Canary-protocol proof engine: clean proofs over every scheme's compiler
// output, and adversarial hand-built programs pinned to their exact
// diagnostics — a checker that cannot name what broke cannot be trusted
// when it says nothing broke.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "analysis/canary_proof.hpp"
#include "binfmt/stdlib.hpp"
#include "compiler/codegen.hpp"
#include "core/scheme.hpp"
#include "core/tls_layout.hpp"
#include "workload/webserver.hpp"

namespace pssp {
namespace {

using namespace vm::isa;
using vm::reg;

// A hand-built single-function image; `body` is emitted between the frame
// setup and nothing else — the function provides its own epilogue/ret.
binfmt::linked_binary victim_image(
    const std::function<void(binfmt::bin_function&, binfmt::image&)>& emit_body) {
    binfmt::image img;
    auto& f = img.add_function("victim");
    f.emit({push_r(reg::rbp), mov_rr(reg::rbp, reg::rsp), sub_ri(reg::rsp, 32)});
    emit_body(f, img);
    binfmt::add_standard_library(img, binfmt::link_mode::dynamic_glibc);
    return img.link(binfmt::link_mode::dynamic_glibc);
}

void emit_ssp_install(binfmt::bin_function& f) {
    f.emit({mov_rm(reg::rax, fs(core::tls_canary)),
            mov_mr(mem(reg::rbp, -8), reg::rax)});
}

void emit_ssp_check(binfmt::bin_function& f, binfmt::image& img) {
    const auto ok = f.new_label();
    f.emit({mov_rm(reg::rdx, mem(reg::rbp, -8)),
            xor_rm(reg::rdx, fs(core::tls_canary)), je(ok),
            call_sym(img.sym(binfmt::sym_stack_chk_fail))});
    f.place(ok);
}

const analysis::function_proof& victim_proof(const analysis::proof_result& proof) {
    const auto* fn = proof.find("victim");
    EXPECT_NE(fn, nullptr);
    return *fn;
}

bool has_violation_containing(const analysis::function_proof& fn,
                              const std::string& needle) {
    for (const auto& v : fn.violations)
        if (v.message.find(needle) != std::string::npos) return true;
    return false;
}

TEST(canary_proof, every_scheme_proves_clean_on_the_server_workload) {
    const auto mod = workload::make_server_module(workload::nginx_profile());
    for (const auto kind : core::all_scheme_kinds()) {
        const auto sch =
            std::shared_ptr<const core::scheme>(core::make_scheme(kind));
        for (const auto mode : {binfmt::link_mode::dynamic_glibc,
                                binfmt::link_mode::static_glibc}) {
            const auto binary = compiler::build_module(mod, sch, mode);
            const auto proof = analysis::prove_canary_protocol(binary);
            EXPECT_TRUE(proof.clean())
                << core::to_string(kind) << "/" << binfmt::to_string(mode) << ": "
                << (proof.all_violations().empty()
                        ? ""
                        : proof.all_violations().front().message);
        }
    }
}

TEST(canary_proof, proven_sources_match_the_scheme_contract) {
    const auto mod = workload::make_server_module(workload::nginx_profile());
    for (const auto kind : core::all_scheme_kinds()) {
        const auto sch =
            std::shared_ptr<const core::scheme>(core::make_scheme(kind));
        const auto binary = compiler::build_module(mod, sch);
        const auto proof = analysis::prove_canary_protocol(binary);
        for (const auto& fn : mod.functions) {
            const auto* proven = proof.find(fn.name);
            ASSERT_NE(proven, nullptr) << fn.name;
            const auto plan = compiler::plan_for_function(fn, *sch);
            ASSERT_EQ(plan.protected_frame, proven->is_protected)
                << core::to_string(kind) << "/" << fn.name;
            if (!proven->is_protected) continue;
            EXPECT_EQ(proven->sources,
                      analysis::expected_sources(kind, plan.canaries.size()))
                << core::to_string(kind) << "/" << fn.name << ": got "
                << analysis::source_names(proven->sources);
        }
    }
}

TEST(canary_proof, ret_reachable_without_check_is_pinned) {
    const auto binary = victim_image([](auto& f, auto&) {
        emit_ssp_install(f);
        f.emit({mov_ri(reg::rax, 0), leave(), ret()});  // no check at all
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    const auto& fn = victim_proof(proof);
    EXPECT_TRUE(fn.is_protected);
    EXPECT_TRUE(has_violation_containing(
        fn, "ret reachable with canary state=installed, never checked"))
        << (fn.violations.empty() ? "no violations"
                                  : fn.violations.front().message);
}

TEST(canary_proof, canary_slot_store_between_install_and_check_is_pinned) {
    const auto binary = victim_image([](auto& f, auto& img) {
        emit_ssp_install(f);
        f.emit(mov_mi(mem(reg::rbp, -8), 0x41));  // the clobber
        emit_ssp_check(f, img);
        f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    EXPECT_TRUE(has_violation_containing(
        victim_proof(proof),
        "canary slot [rbp-8] written with non-canary value between install "
        "and check"));
}

TEST(canary_proof, check_not_guarding_an_abort_path_is_pinned) {
    const auto binary = victim_image([](auto& f, auto&) {
        emit_ssp_install(f);
        const auto ok = f.new_label();
        // Comparison is real, but both arms are harmless.
        f.emit({mov_rm(reg::rdx, mem(reg::rbp, -8)),
                xor_rm(reg::rdx, fs(core::tls_canary)), je(ok),
                mov_ri(reg::rax, 1)});
        f.place(ok);
        f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    EXPECT_TRUE(has_violation_containing(
        victim_proof(proof), "canary comparison does not guard an abort path"));
}

TEST(canary_proof, check_on_one_path_only_flags_the_unchecked_ret) {
    const auto binary = victim_image([](auto& f, auto& img) {
        emit_ssp_install(f);
        const auto skip = f.new_label();
        f.emit({cmp_ri(reg::rdi, 0), je(skip)});
        emit_ssp_check(f, img);
        f.place(skip);  // the je path bypasses the check entirely
        f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    // Min-join at the merge: "checked" survives only if every path checked.
    EXPECT_TRUE(has_violation_containing(
        victim_proof(proof),
        "ret reachable with canary state=installed, never checked"));
}

TEST(canary_proof, unprotected_leaf_is_clean_and_unprotected) {
    const auto binary = victim_image([](auto& f, auto&) {
        f.emit({mov_ri(reg::rax, 42), leave(), ret()});
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    const auto& fn = victim_proof(proof);
    EXPECT_FALSE(fn.is_protected);
    EXPECT_TRUE(fn.clean());
    EXPECT_TRUE(fn.slots.empty());
    EXPECT_EQ(fn.sources, 0u);
}

TEST(canary_proof, libc_functions_are_skipped_by_default) {
    const auto binary = victim_image([](auto& f, auto&) {
        f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    for (const auto& fn : proof.functions) {
        if (fn.name != "victim") {
            EXPECT_FALSE(fn.analyzed) << fn.name;
        }
    }
}

TEST(canary_proof, violations_carry_function_block_and_op_index) {
    const auto binary = victim_image([](auto& f, auto&) {
        emit_ssp_install(f);
        f.emit({mov_ri(reg::rax, 0), leave(), ret()});
    });
    const auto proof = analysis::prove_canary_protocol(binary);
    const auto& fn = victim_proof(proof);
    ASSERT_FALSE(fn.violations.empty());
    const auto& v = fn.violations.front();
    EXPECT_EQ(v.function, "victim");
    EXPECT_GE(v.op_index, fn.first_index);
    EXPECT_LT(v.op_index, fn.first_index + fn.insn_count);
    EXPECT_NE(v.block, vm::no_id);
}

}  // namespace
}  // namespace pssp
