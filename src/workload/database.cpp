#include "workload/database.hpp"

namespace pssp::workload {

using namespace compiler;

db_profile mysql_profile() {
    return {.name = "mysql_m",
            .queries = 600,
            .parse_iters = 20,
            .lookup_iters = 120,
            .query_buffer = 128};
}

db_profile sqlite_profile() {
    return {.name = "sqlite_m",
            .queries = 40,
            .parse_iters = 60,
            .lookup_iters = 2200,
            .query_buffer = 128};
}

compiler::ir_module make_db_module(const db_profile& profile) {
    ir_module mod;
    mod.name = profile.name;

    // The "database": an in-memory table plus a canned query text.
    mod.add_global("g_table", 4096);
    mod.add_global("g_query", 128,
                   {'S', 'E', 'L', 'E', 'C', 'T', ' ', '*', ' ', 'F', 'R', 'O',
                    'M', ' ', 't', ' ', 'W', 'H', 'E', 'R', 'E', ' ', 'k', '=',
                    '4', '2', 0});
    mod.add_global("g_answer", 8);

    auto& q = mod.add_function("handle_query");
    const int buf =
        add_local(q, "querybuf", profile.query_buffer, /*is_buffer=*/true);
    const int acc = add_local(q, "acc");
    const int tmp = add_local(q, "tmp");
    const int i = add_local(q, "i");

    // Parse: bounded copy of the query text, then tokenizer-ish hashing.
    q.body.push_back(call_stmt{"strcpy", {addr_of{buf}, global_addr{"g_query"}},
                               std::nullopt, /*writes_memory=*/true});
    q.body.push_back(assign_stmt{acc, const_ref{1469598103934665603ull}});
    loop_stmt parse{i, profile.parse_iters, {}};
    parse.body.push_back(compute_stmt{acc, local_ref{acc}, binop::mul,
                                      const_ref{1099511628211ull}});
    parse.body.push_back(
        compute_stmt{tmp, local_ref{acc}, binop::shr, const_ref{17}});
    parse.body.push_back(
        compute_stmt{acc, local_ref{acc}, binop::xor_, local_ref{tmp}});
    q.body.push_back(parse);

    // Execute: walk the "index" (strided loads + aggregation).
    loop_stmt lookup{i, profile.lookup_iters, {}};
    lookup.body.push_back(load_global_stmt{tmp, "g_table", 0});
    lookup.body.push_back(
        compute_stmt{acc, local_ref{acc}, binop::add, local_ref{tmp}});
    lookup.body.push_back(compute_stmt{acc, local_ref{acc}, binop::mul,
                                       const_ref{2862933555777941757ull}});
    q.body.push_back(lookup);

    q.body.push_back(store_global_stmt{"g_answer", 0, local_ref{acc}});
    q.body.push_back(return_stmt{local_ref{acc}});

    auto& main_fn = mod.add_function("db_main");
    const int r = add_local(main_fn, "r");
    const int qi = add_local(main_fn, "qi");
    const int total = add_local(main_fn, "total");
    main_fn.body.push_back(assign_stmt{total, const_ref{0}});
    loop_stmt runqs{qi, profile.queries, {}};
    runqs.body.push_back(call_stmt{"handle_query", {}, r});
    runqs.body.push_back(
        compute_stmt{total, local_ref{total}, binop::add, local_ref{r}});
    main_fn.body.push_back(runqs);
    main_fn.body.push_back(return_stmt{local_ref{total}});

    return mod;
}

}  // namespace pssp::workload
